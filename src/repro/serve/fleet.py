"""Typed instances and heterogeneous replica fleets.

Until this module existed every replica in the serving simulation was
identical; the fleet was a single integer.  Real fleets mix *instance
types* — a big accelerator stack with more tiers serves a batch faster
and admits a larger batch ceiling, but bills more per second and takes
longer to provision; a small stack is slow and cheap.  Three pieces turn
that into a model:

* :class:`InstanceType` — the immutable spec of one instance flavor:
  stacked tier count, batch ceiling, service-time scale (relative to the
  calibrated accelerator service model), warm-up delay, and $-cost per
  billed second.  :data:`INSTANCE_TYPES` registers the standard flavors
  (``small`` / ``default`` / ``large``).
* :class:`FleetSpec` — a declared composition such as
  ``small:2,large:1``, parsed from and rendered back to the CLI string
  form.  A bare instance count is the degenerate spec ``default:N``.
* :class:`TypedReplicaPool` — the multi-type generalization of
  :class:`ReplicaPool`: one single-type pool per declared slice, global
  dispatch/billing views the engine aggregates over, per-type
  warming/draining accounting, and lazily-integrated per-type
  instance-seconds and $-cost (accrued only when a slice's occupancy
  changes, so the event loop never pays per-event for the accounting).

The single-type pool :class:`ReplicaPool` lives here too (the serving
engine re-exports it for compatibility); it is unchanged in behavior —
a fleet of one ``default`` slice is bit-identical to the pre-fleet
engine, which is what the serving regression baseline pins.

Scale-out across types follows a cost-weighted order (see
:func:`repro.serve.autoscale.allocate_fleet`): the cheapest capacity is
provisioned first and the most expensive capacity is retired first, so
an autoscaled heterogeneous fleet drifts toward the cost-efficient
composition the capacity planner would pick statically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Iterable, Sequence


@dataclass(frozen=True)
class InstanceType:
    """One instance flavor the fleet can be composed of.

    Attributes:
        name: registry name (``small`` / ``default`` / ``large`` / ...).
        tiers: stacked accelerator tiers — documentation of *why* the
            type is fast or slow; the timing effect is carried by
            ``service_scale``.
        max_batch: batch-size ceiling of this hardware (``0`` means no
            ceiling beyond the scheduler's own ``max_batch``).
        service_scale: multiplier on the calibrated batch service time
            (``1.0`` for the default type; ``< 1`` is faster).
        warmup_seconds: provisioning delay before a scaled-out instance
            of this type can serve; ``None`` inherits the engine-level
            warm-up knob.
        cost_per_second: $-cost of one billed instance-second.
    """

    name: str
    tiers: int = 3
    max_batch: int = 0
    service_scale: float = 1.0
    warmup_seconds: float | None = None
    cost_per_second: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance type needs a name")
        if self.tiers < 1:
            raise ValueError(f"tiers must be >= 1, got {self.tiers}")
        if self.max_batch < 0:
            raise ValueError(f"max_batch must be >= 0, got {self.max_batch}")
        if self.service_scale <= 0:
            raise ValueError(
                f"service_scale must be positive, got {self.service_scale}"
            )
        if self.warmup_seconds is not None and self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be non-negative")
        if self.cost_per_second <= 0:
            raise ValueError(
                f"cost_per_second must be positive, got {self.cost_per_second}"
            )

    @property
    def cost_per_capacity(self) -> float:
        """$-cost per unit of serving capacity (lower is more efficient).

        One instance's capacity is inversely proportional to its service
        time, so cost-efficiency is ``cost_per_second * service_scale``
        — the ordering key for cost-weighted scale-out.
        """
        return self.cost_per_second * self.service_scale


#: The standard instance flavors.  The ``default`` type reproduces the
#: pre-fleet engine exactly (scale 1, $1/s, no batch ceiling, engine
#: warm-up).  ``small`` is slow but cost-efficient per unit of work;
#: ``large`` is fast with a high batch ceiling but cost-inefficient —
#: worth paying for only where tail latency demands it.
INSTANCE_TYPES: dict[str, InstanceType] = {
    "small": InstanceType(
        name="small",
        tiers=2,
        max_batch=4,
        service_scale=1.5,
        warmup_seconds=None,
        cost_per_second=0.5,
    ),
    "default": InstanceType(name="default"),
    "large": InstanceType(
        name="large",
        tiers=6,
        max_batch=16,
        service_scale=0.5,
        warmup_seconds=None,
        cost_per_second=2.5,
    ),
}


def get_instance_type(name: str) -> InstanceType:
    """Look up a registered instance type by name."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown instance type {name!r}; "
            f"choose from {sorted(INSTANCE_TYPES)}"
        ) from None


@dataclass(frozen=True)
class FleetSpec:
    """A declared fleet composition: ordered ``(type name, count)`` slices.

    Declaration order is semantic — it is the deterministic tie-break
    for dispatch and scale allocation — so the spec preserves it rather
    than sorting.
    """

    slices: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.slices:
            raise ValueError("a fleet needs at least one slice")
        seen = set()
        for name, count in self.slices:
            get_instance_type(name)
            if name in seen:
                raise ValueError(f"duplicate instance type {name!r} in fleet")
            seen.add(name)
            if count < 0:
                raise ValueError(f"instance count must be >= 0, got {count}")
        if self.total() < 1:
            raise ValueError("a fleet needs at least one instance in total")

    @classmethod
    def parse(cls, text: str) -> "FleetSpec":
        """Parse the CLI form ``"small:2,large:1"`` (or ``"large:3"``)."""
        if not text or not text.strip():
            raise ValueError("empty fleet spec")
        slices = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, count_text = part.partition(":")
            if not sep:
                raise ValueError(
                    f"bad fleet slice {part!r}; expected 'type:count'"
                )
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"bad instance count {count_text!r} in fleet slice {part!r}"
                ) from None
            slices.append((name.strip(), count))
        return cls(slices=tuple(slices))

    @classmethod
    def homogeneous(cls, type_name: str, count: int) -> "FleetSpec":
        """A single-type fleet (``default:N`` is the pre-fleet engine)."""
        return cls(slices=((type_name, count),))

    def render(self) -> str:
        """Back to the CLI string form."""
        return ",".join(f"{name}:{count}" for name, count in self.slices)

    def total(self) -> int:
        """Total declared instances across every slice."""
        return sum(count for _, count in self.slices)

    def types(self) -> tuple[InstanceType, ...]:
        """The resolved :class:`InstanceType` per slice, in order."""
        return tuple(get_instance_type(name) for name, _ in self.slices)

    def counts(self) -> dict[str, int]:
        """``{type name: count}`` view of the composition."""
        return dict(self.slices)

    @property
    def is_default(self) -> bool:
        """Whether this is a pure-default fleet (the pre-fleet model)."""
        return len(self.slices) == 1 and self.slices[0][0] == "default"

    def cost_rate(self) -> float:
        """$-cost per second of the declared composition, all slices up."""
        return sum(
            count * get_instance_type(name).cost_per_second
            for name, count in self.slices
        )


def coerce_fleet(
    fleet: "FleetSpec | str | Iterable[tuple[str, int]] | None",
    instances: int,
) -> FleetSpec:
    """Normalize the engine's ``fleet`` argument to a :class:`FleetSpec`.

    ``None`` (the compatibility path) means a homogeneous ``default``
    fleet of ``instances``.
    """
    if fleet is None:
        return FleetSpec.homogeneous("default", instances)
    if isinstance(fleet, FleetSpec):
        return fleet
    if isinstance(fleet, str):
        return FleetSpec.parse(fleet)
    return FleetSpec(slices=tuple((name, count) for name, count in fleet))


class ReplicaPool:
    """A dynamic set of replica instances with warm-up and draining.

    Instances move through four states: *warming* (provisioned, billed,
    not yet serving), *free* (idle, dispatchable), *busy* (occupied by a
    batch), and *retiring* (busy, will leave the pool when the batch
    finishes instead of returning to free).  ``provisioned`` counts
    everything billed; ``target_size`` excludes retiring instances — it
    is the size the pool is converging to and what the autoscaler reasons
    about.

    Scale-in removes the cheapest capacity first: instances still warming
    (nothing lost), then idle ones, and only then does it mark busy
    instances to retire on departure.  Scale-out conversely rescues
    retiring instances before provisioning cold ones — a draining replica
    is already warm.  All choices are by instance id, so the pool is
    deterministic.

    ``min_size`` exists for the typed fleet: a slice of a heterogeneous
    pool may legitimately drain to zero instances as long as the *fleet*
    keeps at least one; the pre-fleet single-pool contract (at least one
    instance, always) is the default.
    """

    def __init__(
        self,
        instances: int,
        warmup_seconds: float = 0.0,
        min_size: int = 1,
    ) -> None:
        if min_size < 0:
            raise ValueError("min_size must be non-negative")
        if instances < min_size:
            raise ValueError(
                f"need at least one instance, got {instances}"
                if min_size == 1
                else f"need at least {min_size} instance(s), got {instances}"
            )
        if warmup_seconds < 0:
            raise ValueError("warm-up must be non-negative")
        self.warmup_seconds = warmup_seconds
        self.min_size = min_size
        self._free: list[int] = list(range(instances))
        heapq.heapify(self._free)
        self._busy: set[int] = set()
        self._retiring: set[int] = set()
        self._warming: dict[int, float] = {}
        self._next_id = instances
        #: Instances the most recent :meth:`scale_to` rescued from
        #: draining (already warm, so they rejoin without a warm-up) —
        #: what the trace recorder reports as ``rescue`` events.
        self.last_rescued: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def provisioned(self) -> int:
        """Billed instances: warming + free + busy (retiring included)."""
        return len(self._free) + len(self._busy) + len(self._warming)

    @property
    def target_size(self) -> int:
        """Where the pool is heading once retiring instances drain."""
        return self.provisioned - len(self._retiring)

    @property
    def ready_count(self) -> int:
        """Instances able to serve now (free + busy)."""
        return len(self._free) + len(self._busy)

    @property
    def busy_count(self) -> int:
        return len(self._busy)

    @property
    def warming_count(self) -> int:
        return len(self._warming)

    @property
    def retiring_count(self) -> int:
        return len(self._retiring)

    def has_free(self) -> bool:
        return bool(self._free)

    # ------------------------------------------------------------------
    # Dispatch lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> int:
        """Take the lowest-id free instance for a batch."""
        instance = heapq.heappop(self._free)
        self._busy.add(instance)
        return instance

    def release(self, instance: int) -> bool:
        """Return a finished instance; ``False`` when it retires instead."""
        self._busy.discard(instance)
        if instance in self._retiring:
            self._retiring.discard(instance)
            return False
        heapq.heappush(self._free, instance)
        return True

    def warmed(self, instance: int) -> bool:
        """Promote a warmed instance to free (``False`` if it was
        cancelled by a scale-in while still warming)."""
        if instance not in self._warming:
            return False
        del self._warming[instance]
        heapq.heappush(self._free, instance)
        return True

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def instance_ids(self) -> tuple[int, ...]:
        """Every provisioned instance id (free + busy + warming), sorted.

        The fault injector picks crash victims from this view; sorting
        keeps victim selection deterministic under a fixed seed.
        """
        return tuple(sorted([*self._free, *self._busy, *self._warming]))

    def kill(self, instance: int) -> str:
        """Tear ``instance`` down regardless of state (fault injection).

        Returns the state it was in (``"warming"`` / ``"free"`` /
        ``"busy"`` / ``"retiring"``) so the caller can clean up whatever
        that state implied — a busy victim has an in-flight batch to
        fail, a warming one only loses its pending warm-up event.
        """
        if instance in self._warming:
            del self._warming[instance]
            return "warming"
        if instance in self._busy:
            self._busy.discard(instance)
            if instance in self._retiring:
                self._retiring.discard(instance)
                return "retiring"
            return "busy"
        self._free.remove(instance)
        heapq.heapify(self._free)
        return "free"

    def provision(self, now: float) -> tuple[int, float]:
        """Provision one fresh instance (fault recovery).

        Returns ``(instance, ready_time)`` exactly like one entry of
        :meth:`scale_to`'s result: the replacement pays the normal
        warm-up before it can serve.
        """
        instance = self._next_id
        self._next_id += 1
        if self.warmup_seconds > 0:
            ready_at = now + self.warmup_seconds
            self._warming[instance] = ready_at
            return (instance, ready_at)
        heapq.heappush(self._free, instance)
        return (instance, now)

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale_to(self, target: int, now: float) -> list[tuple[int, float]]:
        """Move the pool's ``target_size`` to ``target``.

        Returns ``(instance, ready_time)`` for each newly provisioned
        instance so the engine can schedule its warm-up completion
        (``ready_time == now`` when there is no warm-up delay).
        """
        if target < self.min_size:
            raise ValueError(
                f"cannot scale below one instance, got {target}"
                if self.min_size == 1
                else f"cannot scale below {self.min_size}, got {target}"
            )
        started: list[tuple[int, float]] = []
        rescued: list[int] = []
        # Grow: rescue draining instances first — they are already warm.
        while self.target_size < target and self._retiring:
            instance = min(self._retiring)
            self._retiring.discard(instance)
            rescued.append(instance)
        self.last_rescued = tuple(rescued)
        while self.target_size < target:
            instance = self._next_id
            self._next_id += 1
            if self.warmup_seconds > 0:
                ready_at = now + self.warmup_seconds
                self._warming[instance] = ready_at
                started.append((instance, ready_at))
            else:
                heapq.heappush(self._free, instance)
                started.append((instance, now))
        # Shrink: cancel warm-ups, then idle instances, then drain busy ones.
        while self.target_size > target and self._warming:
            del self._warming[max(self._warming)]
        while self.target_size > target and self._free:
            self._free.remove(max(self._free))
            heapq.heapify(self._free)
        while self.target_size > target:
            candidates = self._busy - self._retiring
            if not candidates:
                break
            self._retiring.add(max(candidates))
        return started


@dataclass(frozen=True)
class TypeUsage:
    """What one fleet slice did over a serving run."""

    name: str
    initial: int
    peak: int
    final: int
    instance_seconds: float
    busy_seconds: float
    cost_dollars: float
    batches: int
    completed: int


class _Slice:
    """One instance type's pool plus its lazily-accrued billing integrals."""

    __slots__ = (
        "itype", "pool", "index", "instance_integral", "busy_integral",
        "last_accrued", "peak", "minimum", "batches", "completed",
    )

    def __init__(self, itype: InstanceType, pool: ReplicaPool, index: int) -> None:
        self.itype = itype
        self.pool = pool
        self.index = index
        self.instance_integral = 0.0
        self.busy_integral = 0.0
        self.last_accrued = 0.0
        self.peak = pool.provisioned
        self.minimum = pool.provisioned
        self.batches = 0
        self.completed = 0

    def accrue(self, now: float) -> None:
        """Integrate billed/busy occupancy up to ``now`` (call *before*
        any mutation that changes the occupancy)."""
        dt = now - self.last_accrued
        if dt > 0:
            self.instance_integral += self.pool.provisioned * dt
            self.busy_integral += self.pool.busy_count * dt
            self.last_accrued = now

    def instance_seconds(self, now: float) -> float:
        """Billed instance-seconds through ``now`` (no mutation)."""
        return self.instance_integral + self.pool.provisioned * max(
            0.0, now - self.last_accrued
        )

    def busy_seconds(self, now: float) -> float:
        """Busy instance-seconds through ``now`` (no mutation)."""
        return self.busy_integral + self.pool.busy_count * max(
            0.0, now - self.last_accrued
        )


class TypedReplicaPool:
    """A heterogeneous fleet: one :class:`ReplicaPool` per instance type.

    The engine's dispatch loop addresses instances by *handle* — a
    ``(slice index, local id)`` pair — and reads aggregate counts
    (``provisioned`` / ``busy_count`` / ...) exactly as it read the
    single pool before, so a one-slice ``default`` fleet reproduces the
    pre-fleet engine bit for bit.

    Per-type billing (instance-seconds and $-cost) is accrued lazily on
    occupancy changes rather than per event: the hot event loop keeps
    its integer-count integrals, and the typed accounting costs one
    accrual per scale/dispatch transition.

    Scale decisions arrive as a *total* fleet size (the autoscaler
    policies are composition-blind); :func:`repro.serve.autoscale
    .allocate_fleet` splits the total across slices in cost-weighted
    order.
    """

    def __init__(
        self,
        spec: FleetSpec,
        default_warmup_seconds: float = 0.0,
    ) -> None:
        if default_warmup_seconds < 0:
            raise ValueError("warm-up must be non-negative")
        self.spec = spec
        self.default_warmup_seconds = default_warmup_seconds
        self.slices: list[_Slice] = []
        for index, (name, count) in enumerate(spec.slices):
            itype = get_instance_type(name)
            warmup = (
                itype.warmup_seconds
                if itype.warmup_seconds is not None
                else default_warmup_seconds
            )
            pool = ReplicaPool(count, warmup_seconds=warmup, min_size=0)
            self.slices.append(_Slice(itype, pool, index))
        self.types: tuple[InstanceType, ...] = tuple(s.itype for s in self.slices)
        # Aggregate occupancy, maintained incrementally: the engine's
        # event loop reads these once per event, so they must stay O(1)
        # rather than a sum over slices.
        self._provisioned = sum(s.pool.provisioned for s in self.slices)
        self._busy = 0
        #: Per-type ``(name, previous, target)`` detail of the most
        #: recent :meth:`scale_to` (what typed scale events report).
        self.last_scale_detail: tuple[tuple[str, int, int], ...] = ()
        #: Rescued-instance labels of the most recent :meth:`scale_to`
        #: (bare ints on the pure-default path, matching pre-fleet traces).
        self.last_rescued: tuple[int | str, ...] = ()

    # ------------------------------------------------------------------
    # Aggregate state (the engine's event-loop view)
    # ------------------------------------------------------------------
    @property
    def is_typed(self) -> bool:
        """Whether the fleet differs from the pre-fleet ``default:N``."""
        return not self.spec.is_default

    @property
    def provisioned(self) -> int:
        return self._provisioned

    @property
    def target_size(self) -> int:
        return sum(s.pool.target_size for s in self.slices)

    @property
    def ready_count(self) -> int:
        return sum(s.pool.ready_count for s in self.slices)

    @property
    def busy_count(self) -> int:
        return self._busy

    @property
    def warming_count(self) -> int:
        return sum(s.pool.warming_count for s in self.slices)

    @property
    def retiring_count(self) -> int:
        return sum(s.pool.retiring_count for s in self.slices)

    def has_free(self) -> bool:
        return any(s.pool.has_free() for s in self.slices)

    # ------------------------------------------------------------------
    # Dispatch lifecycle (handle = (slice index, local instance id))
    # ------------------------------------------------------------------
    def acquire(self, index: int, now: float) -> tuple[int, int]:
        slice_ = self.slices[index]
        slice_.accrue(now)
        slice_.batches += 1
        self._busy += 1
        return (index, slice_.pool.acquire())

    def release(self, handle: tuple[int, int], now: float) -> bool:
        index, instance = handle
        slice_ = self.slices[index]
        slice_.accrue(now)
        self._busy -= 1
        returned = slice_.pool.release(instance)
        if not returned:  # the instance retired instead of going free
            self._provisioned -= 1
        return returned

    def warmed(self, handle: tuple[int, int], now: float) -> bool:
        index, instance = handle
        slice_ = self.slices[index]
        slice_.accrue(now)
        return slice_.pool.warmed(instance)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def instance_ids(self, index: int) -> tuple[int, ...]:
        """Provisioned instance ids of slice ``index`` (victim pool)."""
        return self.slices[index].pool.instance_ids()

    def crash(self, handle: tuple[int, int], now: float) -> str:
        """Tear down a crashed instance; returns its prior state.

        Billing invariant: the slice accrues up to ``now`` *before* the
        kill, so a busy victim's partial busy-seconds land in its type's
        integrals and the cached ``_busy`` aggregate never goes negative
        — the crash is billed exactly like a departure that happened at
        the crash instant.
        """
        index, instance = handle
        slice_ = self.slices[index]
        slice_.accrue(now)
        state = slice_.pool.kill(instance)
        self._provisioned -= 1
        if state in ("busy", "retiring"):
            self._busy -= 1
        slice_.minimum = min(slice_.minimum, slice_.pool.target_size)
        return state

    def restore(self, index: int, now: float) -> tuple[tuple[int, int], float]:
        """Provision one replacement instance in slice ``index``.

        Returns ``(handle, ready_time)``; the replacement pays the
        slice's normal warm-up, so recovery is never instantaneous
        unless provisioning itself is.
        """
        slice_ = self.slices[index]
        slice_.accrue(now)
        instance, ready_at = slice_.pool.provision(now)
        self._provisioned += 1
        slice_.peak = max(slice_.peak, slice_.pool.provisioned)
        return ((index, instance), ready_at)

    def label(self, handle: tuple[int, int]) -> int | str:
        """Trace-friendly instance name.

        The pre-fleet engine traced bare integer ids; a pure-default
        fleet keeps that form so recorded traces stay bit-identical.
        Typed fleets qualify the id with the type name.
        """
        index, instance = handle
        if not self.is_typed:
            return instance
        return f"{self.slices[index].itype.name}:{instance}"

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scale_to(
        self, target: int, now: float
    ) -> list[tuple[tuple[int, int], float]]:
        """Move the fleet's total ``target_size`` to ``target``.

        The split across slices follows the cost-weighted allocation
        (cheapest capacity provisioned first, most expensive retired
        first); returns ``(handle, ready_time)`` per newly provisioned
        instance, exactly like :meth:`ReplicaPool.scale_to`.
        """
        from repro.serve.autoscale import allocate_fleet

        if target < 1:
            raise ValueError(f"cannot scale below one instance, got {target}")
        current = [s.pool.target_size for s in self.slices]
        desired = allocate_fleet(
            current,
            target,
            self.types,
            weights=[count for _, count in self.spec.slices],
        )
        started: list[tuple[tuple[int, int], float]] = []
        detail: list[tuple[str, int, int]] = []
        rescued: list[int | str] = []
        for slice_, previous, want in zip(self.slices, current, desired):
            if want == previous:
                continue
            slice_.accrue(now)
            for instance, ready_at in slice_.pool.scale_to(want, now):
                started.append(((slice_.index, instance), ready_at))
            detail.append((slice_.itype.name, previous, want))
            rescued.extend(
                self.label((slice_.index, i))
                for i in slice_.pool.last_rescued
            )
            slice_.peak = max(slice_.peak, slice_.pool.provisioned)
            slice_.minimum = min(slice_.minimum, slice_.pool.target_size)
        self.last_scale_detail = tuple(detail)
        self.last_rescued = tuple(rescued)
        # Scaling moves instances through every state (cancelled
        # warm-ups, retired idlers, fresh provisions): recompute the
        # cached aggregates once per scale decision, O(slices).
        self._provisioned = sum(s.pool.provisioned for s in self.slices)
        self._busy = sum(s.pool.busy_count for s in self.slices)
        return started

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------
    def cost_dollars(self, now: float) -> float:
        """$-cost of all billed capacity through ``now``."""
        return sum(
            s.instance_seconds(now) * s.itype.cost_per_second
            for s in self.slices
        )

    def usage(self, now: float, initial: Sequence[int] | None = None) -> tuple[
        TypeUsage, ...
    ]:
        """Per-type usage snapshot through ``now``."""
        initial = (
            initial
            if initial is not None
            else [count for _, count in self.spec.slices]
        )
        return tuple(
            TypeUsage(
                name=s.itype.name,
                initial=initial[s.index],
                peak=s.peak,
                final=s.pool.target_size,
                instance_seconds=s.instance_seconds(now),
                busy_seconds=s.busy_seconds(now),
                cost_dollars=s.instance_seconds(now) * s.itype.cost_per_second,
                batches=s.batches,
                completed=s.completed,
            )
            for s in self.slices
        )


def fleet_with_total(spec: FleetSpec, total: int) -> FleetSpec:
    """The composition ``spec`` rescaled to ``total`` instances.

    Grows and shrinks follow the same cost-weighted order as the live
    pool, so a statically planned fleet and an autoscaled one converge
    on the same composition for the same total.
    """
    from repro.serve.autoscale import allocate_fleet

    declared = [count for _, count in spec.slices]
    counts = allocate_fleet(declared, total, spec.types(), weights=declared)
    return replace(
        spec,
        slices=tuple(
            (name, count) for (name, _), count in zip(spec.slices, counts)
        ),
    )
