"""Named serving campaigns for ``python -m repro serve``.

Each preset is a ready-to-run :class:`~repro.campaign.spec.CampaignSpec`
whose base is a :class:`~repro.serve.scenario.ServingScenario`.  Workload
defaults are laptop-friendly (the service model calibrates once per
dataset and every simulated second costs only the event loop), so even
the 12-point cross-products finish in seconds — near-instantly on a warm
result store.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec
from repro.serve.scenario import ServingScenario

_BASE = ServingScenario(
    dataset="ppi",
    scale=0.05,
    qps=50.0,
    duration_seconds=1.0,
    num_tenants=2,
    max_batch=8,
    instances=1,
    seed=0,
)


def _build_presets() -> dict[str, CampaignSpec]:
    return {
        "serving": CampaignSpec(
            name="serving",
            base=_BASE,
            axes=(
                ("qps", (25.0, 100.0, 400.0)),
                ("max_batch", (1, 8)),
                ("instances", (1, 2)),
            ),
            description=(
                "load x batching x fleet-size cross-product: where the "
                "latency knee sits and what batching + replication buy "
                "(12 scenarios)"
            ),
        ),
        "arrivals": CampaignSpec(
            name="arrivals",
            base=_BASE,
            axes=(
                ("arrival", ("poisson", "mmpp", "diurnal")),
                ("qps", (50.0, 200.0)),
            ),
            description=(
                "arrival-model study: identical average load offered "
                "smoothly, in bursts, and diurnally — tail latency tells "
                "them apart"
            ),
        ),
        "policies": CampaignSpec(
            name="policies",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                qps=200.0,
                duration_seconds=1.0,
                num_tenants=4,
                instances=1,
                seed=0,
            ),
            axes=(
                ("policy", ("fifo", "wfq")),
                ("max_batch", (4, 16)),
            ),
            description=(
                "scheduler-policy study: FIFO vs weighted-fair batching "
                "under a 4-tenant overload"
            ),
        ),
    }


SERVING_PRESETS: dict[str, CampaignSpec] = _build_presets()


def serving_preset_names() -> list[str]:
    return sorted(SERVING_PRESETS)


def get_serving_preset(name: str) -> CampaignSpec:
    try:
        return SERVING_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown serving preset {name!r}; "
            f"choose from {serving_preset_names()}"
        ) from None
