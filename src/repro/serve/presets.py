"""Named serving campaigns for ``python -m repro serve``.

Each preset is a ready-to-run :class:`~repro.campaign.spec.CampaignSpec`
whose base is a :class:`~repro.serve.scenario.ServingScenario`.  Workload
defaults are laptop-friendly (the service model calibrates once per
dataset and every simulated second costs only the event loop), so even
the 12-point cross-products finish in seconds — near-instantly on a warm
result store.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec
from repro.serve.scenario import ServingScenario

_BASE = ServingScenario(
    dataset="ppi",
    scale=0.05,
    qps=50.0,
    duration_seconds=1.0,
    num_tenants=2,
    max_batch=8,
    instances=1,
    seed=0,
)


def _build_presets() -> dict[str, CampaignSpec]:
    return {
        "serving": CampaignSpec(
            name="serving",
            base=_BASE,
            axes=(
                ("qps", (25.0, 100.0, 400.0)),
                ("max_batch", (1, 8)),
                ("instances", (1, 2)),
            ),
            description=(
                "load x batching x fleet-size cross-product: where the "
                "latency knee sits and what batching + replication buy "
                "(12 scenarios)"
            ),
        ),
        "arrivals": CampaignSpec(
            name="arrivals",
            base=_BASE,
            axes=(
                ("arrival", ("poisson", "mmpp", "diurnal")),
                ("qps", (50.0, 200.0)),
            ),
            description=(
                "arrival-model study: identical average load offered "
                "smoothly, in bursts, and diurnally — tail latency tells "
                "them apart"
            ),
        ),
        "policies": CampaignSpec(
            name="policies",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                qps=200.0,
                duration_seconds=1.0,
                num_tenants=4,
                instances=1,
                seed=0,
            ),
            axes=(
                ("policy", ("fifo", "wfq")),
                ("max_batch", (4, 16)),
            ),
            description=(
                "scheduler-policy study: FIFO vs weighted-fair batching "
                "under a 4-tenant overload"
            ),
        ),
        "autoscale": CampaignSpec(
            name="autoscale",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                arrival="mmpp",
                qps=150.0,
                duration_seconds=2.0,
                num_tenants=2,
                max_batch=8,
                instances=2,
                min_instances=1,
                max_instances=6,
                seed=0,
            ),
            axes=(
                ("autoscaler", ("none", "target-util", "queue-pid")),
                ("autoscale_target", (0.5, 0.7)),
            ),
            description=(
                "closed-loop fleet study under bursty MMPP traffic: static "
                "fleet vs target-utilization vs queue-PID autoscaling — "
                "compare tail latency against instance-seconds"
            ),
        ),
        "admission": CampaignSpec(
            name="admission",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                arrival="mmpp",
                qps=400.0,
                duration_seconds=1.5,
                num_tenants=2,
                max_batch=8,
                instances=2,
                queue_budget=32,
                seed=0,
            ),
            axes=(
                ("admission", ("none", "shed", "tarpit")),
                ("qps", (200.0, 400.0, 800.0)),
            ),
            description=(
                "overload-response study: open loop vs queue-budget "
                "shedding vs tarpit backpressure as offered load passes "
                "the fleet's capacity — shed rate buys bounded tails"
            ),
        ),
        "fleet": CampaignSpec(
            name="fleet",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                arrival="mmpp",
                qps=200.0,
                duration_seconds=1.0,
                num_tenants=2,
                max_batch=8,
                seed=0,
            ),
            axes=(
                (
                    "fleet",
                    ("default:3", "small:2,large:1", "small:4", "large:2"),
                ),
                ("routing", ("shared_queue", "size_affinity")),
            ),
            description=(
                "heterogeneous-fleet study under bursty traffic: "
                "compositions of small/default/large instances crossed "
                "with shared-queue vs size-affinity routing — compare "
                "p99 against $-cost"
            ),
        ),
        "reliability": CampaignSpec(
            name="reliability",
            base=ServingScenario(
                dataset="ppi",
                scale=0.05,
                qps=100.0,
                duration_seconds=2.0,
                num_tenants=2,
                max_batch=8,
                instances=4,
                fleet="small:2,default:2",
                routing="size_affinity",
                slo_seconds=0.1,
                faults=(
                    "mtbf=0.5,mttr=0.08,slow_mtbf=0.6,slow_factor=4.0,"
                    "slow_duration=0.2,zones=2,zone_mtbf=3.0,zone_mttr=0.12"
                ),
                seed=0,
            ),
            axes=(
                ("retry", ("none", "backoff", "deadline")),
                ("hedge_seconds", (0.0, 0.04)),
            ),
            description=(
                "fault-survival study: crashes, slowdowns, and zone "
                "outages against retry policy x hedged dispatch — how "
                "much fault-free SLO attainment each stance recovers "
                "(6 scenarios)"
            ),
        ),
    }


SERVING_PRESETS: dict[str, CampaignSpec] = _build_presets()


def serving_preset_names() -> list[str]:
    """Registered preset names, sorted (what ``--list-presets`` shows)."""
    return sorted(SERVING_PRESETS)


def get_serving_preset(name: str) -> CampaignSpec:
    """Look up a named serving campaign preset."""
    try:
        return SERVING_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown serving preset {name!r}; "
            f"choose from {serving_preset_names()}"
        ) from None
