"""Retry policies and hedged dispatch for failed or slow requests.

Fault injection (:mod:`repro.serve.faults`) makes requests *fail*; this
module decides what happens next.  Two orthogonal mechanisms:

* **Retries** — a :class:`RetryPolicy` answers, per failed attempt,
  "wait how long before re-enqueueing, or give up?":

  - ``none`` — every failure is final (the measured baseline).
  - ``backoff`` — capped-attempt exponential backoff with
    *deterministic* jitter: the delay for attempt ``k`` is
    ``base * 2^(k-1)`` scaled by a jitter factor derived from a pure
    integer hash of ``(seed, request id, attempt)``.  No RNG state, so
    retry timing never perturbs the fault or arrival streams and a
    retried run stays a deterministic function of the scenario.
  - ``deadline`` — the same backoff, but a retry that could not land
    before ``deadline_seconds`` after the request's original arrival
    gives up instead of queueing doomed work.

* **Hedging** — duplicate a still-unfinished request to a second queue
  after a fixed delay (the engine's ``hedge_seconds``, typically set
  near the observed p95); whichever copy departs first wins and the
  loser is cancelled at its own departure.  Hedging is the tail-latency
  insurance of real serving stacks: it converts "one unlucky queue"
  into "two independent draws", at the cost of duplicated work.  The
  policy object here only carries the knob; the first-wins bookkeeping
  lives in the engine's event loop where the copies actually race.

Retries compose with routing and fault-aware target health: a retried
request re-routes like a fresh arrival, so it naturally lands on a
healthy target when its original one is down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.arrivals import Request

#: Retry-policy registry names (CLI / scenario ``retry`` knob).
RETRY_POLICIES = ("none", "backoff", "deadline")


def _jitter_factor(seed: int, request_id: int, attempt: int) -> float:
    """Deterministic jitter in ``[0.5, 1.0)`` from a pure integer hash.

    splitmix64-style bit mixing: uniform enough to decorrelate retry
    storms, stateless so the policy is a pure function — two engines
    retrying the same request agree without sharing an RNG.
    """
    x = (seed * 0x9E3779B97F4A7C15 + request_id * 0xBF58476D1CE4E5B9
         + attempt * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return 0.5 + (x / 2**64) * 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """When (and whether) a failed request re-enters the queue.

    Attributes:
        mode: ``"none"`` / ``"backoff"`` / ``"deadline"``.
        max_attempts: total service attempts allowed per request
            (the first dispatch counts; ``3`` means up to two retries).
        base_seconds: first retry delay; attempt ``k`` waits
            ``base * 2^(k-1)`` before jitter.
        deadline_seconds: per-request give-up budget measured from the
            original arrival (``deadline`` mode only).
        seed: scenario seed feeding the deterministic jitter hash.
    """

    mode: str = "none"
    max_attempts: int = 3
    base_seconds: float = 0.005
    deadline_seconds: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in RETRY_POLICIES:
            raise ValueError(
                f"unknown retry mode {self.mode!r}; "
                f"choose from {RETRY_POLICIES}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_seconds <= 0:
            raise ValueError("base_seconds must be positive")
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    @property
    def enabled(self) -> bool:
        """Whether failures can ever be retried under this policy."""
        return self.mode != "none" and self.max_attempts > 1

    def next_delay(
        self, request: Request, attempt: int, now: float
    ) -> float | None:
        """Delay before retry number ``attempt`` (``None`` = give up).

        ``attempt`` counts completed service attempts so far: after the
        first failure the engine asks with ``attempt=1``.  ``now`` is
        the failure time; ``deadline`` mode gives up when the jittered
        retry could not be *enqueued* before the request's deadline.
        """
        if self.mode == "none" or attempt >= self.max_attempts:
            return None
        delay = self.base_seconds * (2.0 ** (attempt - 1))
        delay *= _jitter_factor(self.seed, request.request_id, attempt)
        if self.mode == "deadline":
            deadline = request.arrival_time + self.deadline_seconds
            if now + delay >= deadline:
                return None
        return delay


def make_retry_policy(
    mode: str,
    max_attempts: int = 3,
    base_seconds: float = 0.005,
    deadline_seconds: float = 0.25,
    seed: int = 0,
) -> "RetryPolicy | None":
    """Build a retry policy from scenario knobs.

    ``"none"`` returns ``None`` so the engine can skip the retry
    machinery entirely on the compatibility path.
    """
    if mode == "none":
        return None
    return RetryPolicy(
        mode=mode,
        max_attempts=max_attempts,
        base_seconds=base_seconds,
        deadline_seconds=deadline_seconds,
        seed=seed,
    )
