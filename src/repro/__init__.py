"""ReGraphX reproduction: a 3D heterogeneous ReRAM GNN-training accelerator.

Full-stack Python reproduction of *ReGraphX: NoC-enabled 3D Heterogeneous
ReRAM Architecture for Training Graph Neural Networks* (DATE 2021).

Subpackages:

* :mod:`repro.graph` — graphs, synthetic datasets, partitioning,
  Cluster-GCN batching, serialization
* :mod:`repro.gnn` — numpy GCN/GraphSAGE training substrate
* :mod:`repro.reram` — crossbar/IMA/tile models, timing, energy, sparse
  block mapping, device variation
* :mod:`repro.noc` — 3D mesh, routing, multicast, schedulers, flit-level
  simulators
* :mod:`repro.core` — the architecture: config, mapping, traffic,
  pipeline, accelerator, evaluation, thermal, DSE
* :mod:`repro.campaign` — declarative sweeps, parallel execution, the
  content-addressed result store
* :mod:`repro.serve` — inference serving: arrivals, admission control,
  batching, autoscaling, capacity planning
* :mod:`repro.experiments` — one driver per reported table/figure
* :mod:`repro.baselines` — V100 GPU, planar mesh, homogeneous ReRAM
* :mod:`repro.utils` — RNG, hashing, unit formatting

Typical entry point::

    from repro.core import ReGraphX, compare_with_gpu
    accelerator = ReGraphX()
    workload = accelerator.build_workload("reddit", scale=0.02)
    report = accelerator.evaluate(workload)
    print(compare_with_gpu(report).speedup)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
