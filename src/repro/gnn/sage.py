"""GraphSAGE (mean aggregator) — the paper's generality claim.

Paper Sec. V.A: "our findings and the proposed architecture are equally
applicable to other GNNs that rely on the recursive neighborhood
aggregation scheme."  GraphSAGE-mean is the canonical other member of that
family: each layer computes

    h' = act( [ h  ||  mean_{u in N(v)} h_u ] @ W )

with ``W`` stacking the self- and neighbor-transforms.  Folding both into
one weight keeps the layer inside the single-matrix V-layer abstraction the
hardware model maps, so a SAGE workload schedules on ReGraphX unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.gnn.model import GCN
from repro.gnn.ops import glorot_init, relu, relu_grad, spmm
from repro.graph.graph import CSRGraph
from repro.utils.rng import rng_from_seed, spawn_rngs


def mean_adjacency(graph: CSRGraph) -> sparse.csr_matrix:
    """Row-normalized adjacency ``D^-1 A`` (the mean aggregator, no
    self-loops — SAGE handles self features through the concat path)."""
    adj = graph.to_scipy().astype(np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(deg)
    nz = deg > 0
    inv[nz] = 1.0 / deg[nz]
    return (sparse.diags(inv) @ adj).tocsr()


@dataclass
class SAGELayer:
    """One GraphSAGE-mean layer with a stacked ``(2*in_dim, out_dim)`` weight."""

    weight: np.ndarray
    activation: str = "relu"
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 2 or self.weight.shape[0] % 2:
            raise ValueError(
                f"SAGE weight must stack [self; neighbor] transforms: "
                f"got shape {self.weight.shape}"
            )
        if self.activation not in ("relu", "linear"):
            raise ValueError(f"unknown activation {self.activation!r}")

    @property
    def in_dim(self) -> int:
        return int(self.weight.shape[0] // 2)

    @property
    def out_dim(self) -> int:
        return int(self.weight.shape[1])

    def forward(self, a_mean: sparse.spmatrix, h_in: np.ndarray) -> np.ndarray:
        """``act(concat(h, A_mean h) @ W)``; caches for backward."""
        if h_in.shape[1] != self.in_dim:
            raise ValueError(
                f"input width {h_in.shape[1]} does not match fan-in {self.in_dim}"
            )
        aggregated = spmm(a_mean, h_in)
        stacked = np.concatenate([h_in, aggregated], axis=1)
        pre = stacked @ self.weight
        out = relu(pre) if self.activation == "relu" else pre
        self._cache = {"a_mean": a_mean, "stacked": stacked, "pre": pre}
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns (grad_weight, grad_input)."""
        if not self._cache:
            raise RuntimeError("backward called before forward")
        a_mean = self._cache["a_mean"]
        stacked = self._cache["stacked"]
        pre = self._cache["pre"]
        if grad_out.shape != pre.shape:
            raise ValueError(
                f"grad_out shape {grad_out.shape} does not match output {pre.shape}"
            )
        grad_pre = grad_out * relu_grad(pre) if self.activation == "relu" else grad_out
        grad_weight = stacked.T @ grad_pre
        grad_stacked = grad_pre @ self.weight.T
        d = self.in_dim
        grad_self = grad_stacked[:, :d]
        grad_agg = grad_stacked[:, d:]
        # Mean aggregation is linear: its adjoint is A_mean^T.
        grad_input = grad_self + spmm(a_mean.T, grad_agg)
        return grad_weight, grad_input


class GraphSAGE(GCN):
    """GraphSAGE-mean model with the same interface as :class:`GCN`.

    Pass :func:`mean_adjacency` of the (sub-)graph as the propagation
    operator — everything else (trainer, metrics, hardware shapes via
    ``layer_dims``) is shared with the GCN path.
    """

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"need at least one layer, got {num_layers}")
        rng = rng_from_seed(seed)
        dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        rngs = spawn_rngs(rng, num_layers)
        # Intentionally skip GCN.__init__ (layers differ); rebuild here.
        self.layers = [
            SAGELayer(
                weight=glorot_init(2 * dims[i], dims[i + 1], rngs[i]),
                activation="linear" if i == num_layers - 1 else "relu",
            )
            for i in range(num_layers)
        ]

    @property
    def layer_dims(self) -> list[tuple[int, int]]:
        """(effective_in_dim, out_dim) per layer — the V-layer weight is
        ``2*in_dim`` wide because of the concat."""
        return [(2 * layer.in_dim, layer.out_dim) for layer in self.layers]
