"""Primitive numerical operations for the numpy GCN.

Everything here is pure and shape-checked; layers compose these into
forward/backward passes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.utils.rng import rng_from_seed


def glorot_init(
    fan_in: int, fan_out: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` weight."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError(f"fan dimensions must be positive, got ({fan_in}, {fan_out})")
    rng = rng_from_seed(seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_grad(pre_activation: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation values."""
    return (pre_activation > 0.0).astype(pre_activation.dtype)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over (masked) rows and its gradient w.r.t. logits.

    Args:
        logits: ``(n, classes)`` raw scores.
        labels: ``(n,)`` integer class ids.
        mask: optional boolean ``(n,)`` selecting the rows that contribute
            to the loss (e.g. training nodes in the current sub-graph).

    Returns:
        (loss, grad) where ``grad`` has the same shape as ``logits`` and is
        already averaged over the contributing rows (zero on masked-out rows).
    """
    n, num_classes = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match logits rows {n}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label id out of range for logits width")
    if mask is None:
        mask = np.ones(n, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        return 0.0, np.zeros_like(logits)
    probs = softmax(logits)
    picked = probs[np.arange(n), labels]
    loss = float(-np.log(np.clip(picked[mask], 1e-12, None)).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad[~mask] = 0.0
    grad /= count
    return loss, grad


def spmm(a_hat: sparse.spmatrix, dense: np.ndarray) -> np.ndarray:
    """Sparse-dense multiply ``A_hat @ dense`` (the E-layer operation)."""
    if a_hat.shape[1] != dense.shape[0]:
        raise ValueError(
            f"shape mismatch: {a_hat.shape} @ {dense.shape}"
        )
    return np.asarray(a_hat @ dense)
