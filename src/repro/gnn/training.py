"""Cluster-GCN training loop (paper Sec. V.B / Fig. 5).

The trainer consumes merged cluster batches from
:class:`repro.graph.clustering.ClusterBatcher`: each step runs one forward +
backward pass over one merged sub-graph and applies an Adam update.  Small
batch sizes (beta) produce small, edge-starved sub-graphs and thus noisy
gradients — the instability the paper shows for beta = 1 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gnn.metrics import accuracy
from repro.gnn.model import GCN
from repro.graph.clustering import ClusterBatcher
from repro.graph.graph import CSRGraph
from repro.utils.rng import rng_from_seed


class Adam:
    """Adam optimizer over a list of live parameter arrays."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must lie in [0, 1)")
        self.parameters = parameters
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one Adam update in place."""
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"got {len(gradients)} gradients for {len(self.parameters)} parameters"
            )
        self._t += 1
        for p, g, m, v in zip(self.parameters, gradients, self._m, self._v):
            if g.shape != p.shape:
                raise ValueError(f"gradient shape {g.shape} != parameter shape {p.shape}")
            if self.weight_decay:
                g = g + self.weight_decay * p
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass(frozen=True)
class EpochStats:
    """Metrics recorded after one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: float


@dataclass
class TrainingHistory:
    """Accumulated per-epoch statistics (Fig. 5's accuracy curves)."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def train_accuracy(self) -> list[float]:
        return [e.train_accuracy for e in self.epochs]

    @property
    def val_accuracy(self) -> list[float]:
        return [e.val_accuracy for e in self.epochs]

    @property
    def train_loss(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    @property
    def final_val_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].val_accuracy

    def stability(self, window: int = 10) -> float:
        """Largest epoch-to-epoch validation accuracy *drop* over the last
        ``window`` epochs — the 'sudden dips' measure for Fig. 5."""
        acc = self.val_accuracy[-window:]
        if len(acc) < 2:
            return 0.0
        drops = [max(0.0, acc[i] - acc[i + 1]) for i in range(len(acc) - 1)]
        return max(drops)


class ClusterGCNTrainer:
    """Trains a :class:`GCN` with stochastic multi-cluster batching.

    Args:
        model: the GCN to train.
        graph: the full (featured, labeled) graph.
        batcher: epoch sampler of merged cluster batches.
        train_fraction: fraction of nodes used for training; the rest form
            the validation set (split is deterministic per seed).
        lr: Adam learning rate.
        seed: controls the train/val split.
    """

    def __init__(
        self,
        model: GCN,
        graph: CSRGraph,
        batcher: ClusterBatcher,
        train_fraction: float = 0.7,
        lr: float = 0.01,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if graph.features is None or graph.labels is None:
            raise ValueError("training requires a graph with features and labels")
        if not 0 < train_fraction < 1:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        self.model = model
        self.graph = graph
        self.batcher = batcher
        self.optimizer = Adam(model.parameters(), lr=lr)
        rng = rng_from_seed(seed)
        order = rng.permutation(graph.num_nodes)
        n_train = int(train_fraction * graph.num_nodes)
        self.train_mask = np.zeros(graph.num_nodes, dtype=bool)
        self.train_mask[order[:n_train]] = True
        self.val_mask = ~self.train_mask
        # Validation runs on the full graph's normalized adjacency (cached).
        self._full_a_hat = graph.normalized_adjacency()

    def train_epoch(self) -> tuple[float, float]:
        """One epoch over all merged batches; returns (mean loss, train acc)."""
        losses: list[float] = []
        correct = 0
        counted = 0
        for batch in self.batcher.epoch():
            sub = batch.subgraph
            a_hat = sub.normalized_adjacency()
            mask = self.train_mask[batch.nodes]
            loss, grads, logits = self.model.loss_and_gradients(
                a_hat, sub.features, sub.labels, mask
            )
            if mask.any():
                self.optimizer.step(grads)
                losses.append(loss)
                preds = np.argmax(logits[mask], axis=1)
                correct += int((preds == sub.labels[mask]).sum())
                counted += int(mask.sum())
        mean_loss = float(np.mean(losses)) if losses else 0.0
        train_acc = correct / counted if counted else 0.0
        return mean_loss, train_acc

    def evaluate(self) -> float:
        """Validation accuracy over the full graph."""
        preds = self.model.predict(self._full_a_hat, self.graph.features)
        return accuracy(preds[self.val_mask], self.graph.labels[self.val_mask])

    def fit(self, num_epochs: int, verbose: bool = False) -> TrainingHistory:
        """Run ``num_epochs`` epochs; returns the accuracy history."""
        if num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
        history = TrainingHistory()
        for epoch in range(num_epochs):
            loss, train_acc = self.train_epoch()
            val_acc = self.evaluate()
            history.append(EpochStats(epoch, loss, train_acc, val_acc))
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss {loss:.4f}  "
                    f"train acc {train_acc:.3f}  val acc {val_acc:.3f}"
                )
        return history
