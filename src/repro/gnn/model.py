"""Multi-layer GCN model (the paper uses 4 neural layers per dataset)."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.gnn.layers import GCNLayer
from repro.gnn.ops import glorot_init, softmax, softmax_cross_entropy
from repro.utils.rng import rng_from_seed, spawn_rngs


class GCN:
    """A stack of :class:`GCNLayer` with softmax cross-entropy on top.

    Layer widths follow the paper's Cluster-GCN configuration:
    ``feature_dim -> hidden -> ... -> hidden -> num_classes`` with
    ``num_layers`` neural (V+E) layers in total; hidden layers use ReLU and
    the output layer is linear.
    """

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 4,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"need at least one layer, got {num_layers}")
        rng = rng_from_seed(seed)
        dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        rngs = spawn_rngs(rng, num_layers)
        self.layers = [
            GCNLayer(
                weight=glorot_init(dims[i], dims[i + 1], rngs[i]),
                activation="linear" if i == num_layers - 1 else "relu",
            )
            for i in range(num_layers)
        ]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def layer_dims(self) -> list[tuple[int, int]]:
        """(in_dim, out_dim) per neural layer."""
        return [(layer.in_dim, layer.out_dim) for layer in self.layers]

    def parameters(self) -> list[np.ndarray]:
        """Live references to all trainable weights (optimizer mutates them)."""
        return [layer.weight for layer in self.layers]

    def num_parameters(self) -> int:
        return int(sum(w.size for w in self.parameters()))

    def forward(self, a_hat: sparse.spmatrix, features: np.ndarray) -> np.ndarray:
        """Full forward pass; returns logits."""
        h = np.asarray(features, dtype=np.float64)
        for layer in self.layers:
            h = layer.forward(a_hat, h)
        return h

    def loss_and_gradients(
        self,
        a_hat: sparse.spmatrix,
        features: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> tuple[float, list[np.ndarray], np.ndarray]:
        """Forward + backward pass.

        Returns:
            (loss, weight_gradients, logits) — gradients are ordered like
            :meth:`parameters`.
        """
        logits = self.forward(a_hat, features)
        loss, grad = softmax_cross_entropy(logits, labels, mask)
        grads: list[np.ndarray] = []
        for layer in reversed(self.layers):
            grad_w, grad = layer.backward(grad)
            grads.append(grad_w)
        grads.reverse()
        return loss, grads, logits

    def predict(self, a_hat: sparse.spmatrix, features: np.ndarray) -> np.ndarray:
        """Predicted class id per node."""
        return np.argmax(self.forward(a_hat, features), axis=1)

    def predict_proba(self, a_hat: sparse.spmatrix, features: np.ndarray) -> np.ndarray:
        """Class probabilities per node."""
        return softmax(self.forward(a_hat, features))
