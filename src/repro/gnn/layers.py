"""One GCN neural layer = V-layer (dense multiply) + E-layer (aggregation).

The forward pass computes ``H_out = act(A_hat @ (H_in @ W))`` — exactly the
V-then-E decomposition of paper Fig. 1(b)/(c).  The backward pass produces
the gradient w.r.t. both the weights and the layer input, using the cached
forward activations (the data the accelerator must ship between forward and
backward PEs, the source of the paper's multicast traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.gnn.ops import relu, relu_grad, spmm


@dataclass
class GCNLayer:
    """A single GCN layer with trainable weight ``W``.

    Attributes:
        weight: ``(in_dim, out_dim)`` dense weight (the V-layer operand).
        activation: ``"relu"`` or ``"linear"`` (the output layer is linear).
    """

    weight: np.ndarray
    activation: str = "relu"
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {self.weight.shape}")
        if self.activation not in ("relu", "linear"):
            raise ValueError(f"unknown activation {self.activation!r}")

    @property
    def in_dim(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_dim(self) -> int:
        return int(self.weight.shape[1])

    def forward(self, a_hat: sparse.spmatrix, h_in: np.ndarray) -> np.ndarray:
        """Run V-layer then E-layer; cache intermediates for backward."""
        if h_in.shape[1] != self.in_dim:
            raise ValueError(
                f"input width {h_in.shape[1]} does not match weight fan-in {self.in_dim}"
            )
        v_out = h_in @ self.weight           # V-layer: Y = X W
        pre = spmm(a_hat, v_out)             # E-layer: Z = A_hat Y
        out = relu(pre) if self.activation == "relu" else pre
        self._cache = {"a_hat": a_hat, "h_in": h_in, "pre": pre}
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backprop through the layer.

        Args:
            grad_out: gradient of the loss w.r.t. this layer's output.

        Returns:
            (grad_weight, grad_input): gradients w.r.t. ``W`` and ``h_in``.
        """
        if not self._cache:
            raise RuntimeError("backward called before forward")
        a_hat = self._cache["a_hat"]
        h_in = self._cache["h_in"]
        pre = self._cache["pre"]
        if grad_out.shape != pre.shape:
            raise ValueError(
                f"grad_out shape {grad_out.shape} does not match forward output {pre.shape}"
            )
        if self.activation == "relu":
            grad_pre = grad_out * relu_grad(pre)
        else:
            grad_pre = grad_out
        # E-layer backward: A_hat is symmetric, so A_hat^T = A_hat.
        grad_v = spmm(a_hat.T, grad_pre)
        # V-layer backward.
        grad_weight = h_in.T @ grad_v
        grad_input = grad_v @ self.weight.T
        return grad_weight, grad_input
