"""Classification metrics used in the accuracy experiments (paper Fig. 5)."""

from __future__ import annotations

import numpy as np


def _validate(predictions: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("empty prediction array")
    return predictions, labels


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions, labels = _validate(predictions, labels)
    return float((predictions == labels).mean())


def micro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Micro-averaged F1.

    For single-label multi-class problems micro-F1 equals accuracy (every
    false positive is some other class's false negative); implemented
    explicitly so the identity is verifiable in tests.
    """
    predictions, labels = _validate(predictions, labels)
    classes = np.union1d(predictions, labels)
    tp = fp = fn = 0
    for c in classes:
        tp += int(((predictions == c) & (labels == c)).sum())
        fp += int(((predictions == c) & (labels != c)).sum())
        fn += int(((predictions != c) & (labels == c)).sum())
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def macro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged F1 over the classes present in ``labels``."""
    predictions, labels = _validate(predictions, labels)
    scores = []
    for c in np.unique(labels):
        tp = int(((predictions == c) & (labels == c)).sum())
        fp = int(((predictions == c) & (labels != c)).sum())
        fn = int(((predictions != c) & (labels == c)).sum())
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores))
