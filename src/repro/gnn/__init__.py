"""GNN substrate: a numpy GCN with exact forward/backward passes.

Replaces the paper's TensorFlow Cluster-GCN.  The model is the standard
Kipf-Welling GCN: each neural layer is a V-layer (dense ``H W`` multiply)
followed by an E-layer (sparse ``A_hat (H W)`` aggregation), matching the
paper's Fig. 1 decomposition exactly — the same decomposition the
architecture maps onto V-PEs and E-PEs.
"""

from repro.gnn.layers import GCNLayer
from repro.gnn.metrics import accuracy, macro_f1, micro_f1
from repro.gnn.model import GCN
from repro.gnn.ops import (
    glorot_init,
    relu,
    relu_grad,
    softmax,
    softmax_cross_entropy,
)
from repro.gnn.sage import GraphSAGE, SAGELayer, mean_adjacency
from repro.gnn.training import Adam, ClusterGCNTrainer, EpochStats, TrainingHistory

__all__ = [
    "GCNLayer",
    "GCN",
    "GraphSAGE",
    "SAGELayer",
    "mean_adjacency",
    "relu",
    "relu_grad",
    "softmax",
    "softmax_cross_entropy",
    "glorot_init",
    "accuracy",
    "micro_f1",
    "macro_f1",
    "Adam",
    "ClusterGCNTrainer",
    "EpochStats",
    "TrainingHistory",
]
