"""Messages and their flit decomposition.

The NoC's unit of work: a :class:`Message` is one logical transfer from a
source router to one or more destinations (several destinations make it a
multicast), and the simulators move it as a train of fixed-size flits —
one head flit carrying the route plus as many body flits as the payload
needs.  Everything downstream (static schedule analysis, the flit-level
simulators, link statistics) consumes these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """One logical transfer between PEs.

    A message with several destinations is a *multicast* message: under
    tree routing it traverses a multicast tree once; under unicast routing
    it is replicated into one packet per destination.

    Attributes:
        src: source router id.
        dests: destination router ids (at least one; no duplicates).
        size_bits: payload size.
        inject_cycle: earliest cycle the packet may enter the network.
        tag: free-form label (e.g. which pipeline stage produced it) used
            to slice results per layer.
    """

    src: int
    dests: tuple[int, ...]
    size_bits: int
    inject_cycle: int = 0
    tag: str = ""
    msg_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not self.dests:
            raise ValueError("message needs at least one destination")
        if len(set(self.dests)) != len(self.dests):
            raise ValueError(f"duplicate destinations: {self.dests}")
        if self.src in self.dests:
            raise ValueError("message destination equals its source")
        if self.size_bits < 1:
            raise ValueError(f"message size must be positive, got {self.size_bits}")
        if self.inject_cycle < 0:
            raise ValueError("inject_cycle must be non-negative")

    @property
    def is_multicast(self) -> bool:
        return len(self.dests) > 1

    def num_flits(self, flit_bits: int) -> int:
        """Flits for this payload: one head flit plus the body."""
        if flit_bits < 1:
            raise ValueError(f"flit width must be positive, got {flit_bits}")
        return 1 + -(-self.size_bits // flit_bits)
