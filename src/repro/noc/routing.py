"""Deterministic routing: dimension-ordered unicast and tree multicast.

Unicast uses X-Y-Z dimension order (planar first, then the vertical hop —
in ReGraphX's sandwich the V<->E hop is the single final Z step).  Because
every route from a given source follows the same deterministic dimension
order, the union of routes to any destination set forms a tree — exactly
the 3D tree multicast the paper relies on [12].
"""

from __future__ import annotations

from repro.noc.topology import Link, Mesh3D


def dimension_order_route(
    topo: Mesh3D, src: int, dst: int, order: str = "xyz"
) -> list[int]:
    """Router path from ``src`` to ``dst`` under a fixed dimension order.

    ``"xyz"`` resolves planar offsets first and takes the vertical hop last
    (the default); ``"zxy"`` is vertical-first — natural for ReGraphX's
    sandwich, where V<->E transfers start with their single TSV hop.
    Any fixed order is deadlock-free and source-deterministic, so route
    unions still form multicast trees.
    """
    if sorted(order) != ["x", "y", "z"]:
        raise ValueError(f"order must be a permutation of 'xyz', got {order!r}")
    if src == dst:
        return [src]
    coords = dict(zip("xyz", topo.coords(src)))
    target = dict(zip("xyz", topo.coords(dst)))
    path = [src]
    for axis in order:
        while coords[axis] != target[axis]:
            coords[axis] += 1 if target[axis] > coords[axis] else -1
            path.append(topo.router_id(coords["x"], coords["y"], coords["z"]))
    return path


def xyz_route(topo: Mesh3D, src: int, dst: int) -> list[int]:
    """Router path from ``src`` to ``dst`` under X, then Y, then Z order."""
    return dimension_order_route(topo, src, dst, "xyz")


def route_links(path: list[int]) -> list[Link]:
    """Consecutive-router pairs of a path."""
    return list(zip(path[:-1], path[1:]))


def multicast_tree(
    topo: Mesh3D, src: int, dests: tuple[int, ...], order: str = "xyz"
) -> dict[Link, Link | None]:
    """Tree multicast: union of the XYZ routes from ``src`` to each dest.

    Returns a parent map over links: ``tree[link]`` is the upstream link the
    packet arrives on before being forwarded over ``link`` (``None`` for
    links leaving the source router).  Deterministic dimension-order routes
    from one source can never reconverge after diverging, so the union is a
    tree; a packet crosses every tree link exactly once, duplicating only at
    branch routers.
    """
    if not dests:
        raise ValueError("multicast needs at least one destination")
    tree: dict[Link, Link | None] = {}
    for dst in dests:
        if dst == src:
            raise ValueError("multicast destination equals source")
        path = dimension_order_route(topo, src, dst, order)
        prev: Link | None = None
        for link in route_links(path):
            if link not in tree:
                tree[link] = prev
            prev = link
    return tree


def tree_depth_order(tree: dict[Link, Link | None]) -> list[Link]:
    """Tree links sorted root-outward (parents before children)."""
    depth: dict[Link, int] = {}

    def _depth(link: Link) -> int:
        if link not in depth:
            parent = tree[link]
            depth[link] = 0 if parent is None else _depth(parent) + 1
        return depth[link]

    for link in tree:
        _depth(link)
    return sorted(tree, key=lambda l: (depth[l], l))
