"""Mesh topologies: the 3D mesh backbone of ReGraphX and a planar baseline.

Router ids are linearized ``z * (W*H) + y * W + x``.  The ReGraphX instance
is an ``8 x 8 x 3`` mesh: tier 0 and tier 2 carry E-PEs, tier 1 (the middle,
sandwiched tier) carries V-PEs with one-hop vertical reach to both E tiers
(paper Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

Link = tuple[int, int]  # directed (src_router, dst_router)


@dataclass(frozen=True)
class Mesh3D:
    """A ``width x height x tiers`` 3D mesh."""

    width: int
    height: int
    tiers: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1 or self.tiers < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got "
                f"{self.width}x{self.height}x{self.tiers}"
            )

    @property
    def num_routers(self) -> int:
        return self.width * self.height * self.tiers

    @property
    def routers_per_tier(self) -> int:
        return self.width * self.height

    def coords(self, router: int) -> tuple[int, int, int]:
        """Router id -> (x, y, z)."""
        if not 0 <= router < self.num_routers:
            raise IndexError(f"router {router} out of range [0, {self.num_routers})")
        per_tier = self.routers_per_tier
        z, rem = divmod(router, per_tier)
        y, x = divmod(rem, self.width)
        return x, y, z

    def router_id(self, x: int, y: int, z: int) -> int:
        """(x, y, z) -> router id."""
        if not (0 <= x < self.width and 0 <= y < self.height and 0 <= z < self.tiers):
            raise IndexError(f"coordinates ({x}, {y}, {z}) outside the mesh")
        return z * self.routers_per_tier + y * self.width + x

    def neighbors(self, router: int) -> list[int]:
        """Adjacent routers (4 planar + up to 2 vertical)."""
        x, y, z = self.coords(router)
        out = []
        if x > 0:
            out.append(self.router_id(x - 1, y, z))
        if x < self.width - 1:
            out.append(self.router_id(x + 1, y, z))
        if y > 0:
            out.append(self.router_id(x, y - 1, z))
        if y < self.height - 1:
            out.append(self.router_id(x, y + 1, z))
        if z > 0:
            out.append(self.router_id(x, y, z - 1))
        if z < self.tiers - 1:
            out.append(self.router_id(x, y, z + 1))
        return out

    def links(self) -> list[Link]:
        """All directed links."""
        out: list[Link] = []
        for r in range(self.num_routers):
            out.extend((r, n) for n in self.neighbors(r))
        return out

    def is_local(self, link: Link) -> bool:
        """True for injection/ejection (tile <-> router) port links.

        Local ports are encoded with one endpoint offset by
        ``num_routers``: ``(r + N, r)`` is router ``r``'s injection port,
        ``(r, r + N)`` its ejection port.
        """
        return link[0] >= self.num_routers or link[1] >= self.num_routers

    def injection_link(self, router: int) -> Link:
        """The tile -> router injection port of ``router``."""
        if not 0 <= router < self.num_routers:
            raise IndexError(f"router {router} out of range")
        return (router + self.num_routers, router)

    def ejection_link(self, router: int) -> Link:
        """The router -> tile ejection port of ``router``."""
        if not 0 <= router < self.num_routers:
            raise IndexError(f"router {router} out of range")
        return (router, router + self.num_routers)

    def is_vertical(self, link: Link) -> bool:
        """True for TSV (inter-tier) links; local ports are not vertical."""
        if self.is_local(link):
            return False
        (_, _, z1), (_, _, z2) = self.coords(link[0]), self.coords(link[1])
        return z1 != z2

    def distance(self, a: int, b: int) -> int:
        """Hop distance under minimal routing."""
        xa, ya, za = self.coords(a)
        xb, yb, zb = self.coords(b)
        return abs(xa - xb) + abs(ya - yb) + abs(za - zb)

    def tier_routers(self, tier: int) -> list[int]:
        """All router ids on one tier."""
        if not 0 <= tier < self.tiers:
            raise IndexError(f"tier {tier} out of range [0, {self.tiers})")
        base = tier * self.routers_per_tier
        return list(range(base, base + self.routers_per_tier))


def Mesh2D(width: int, height: int) -> Mesh3D:
    """A planar mesh: a 3D mesh with a single tier (the 2D baseline)."""
    return Mesh3D(width, height, 1)
