"""Synthetic traffic generators for NoC-only evaluation and tests.

Besides standard uniform-random and hotspot patterns, this module provides
the GNN-shaped *many-to-one-to-many* pattern of paper Sec. III: many source
routers (V-PEs) send to a shared set of sink routers (E-PEs), which reply
to many destinations.
"""

from __future__ import annotations

import numpy as np

from repro.noc.packet import Message
from repro.noc.topology import Mesh3D
from repro.utils.rng import rng_from_seed


def uniform_random_traffic(
    topo: Mesh3D,
    num_messages: int,
    size_bits: int = 256,
    seed: int | np.random.Generator | None = 0,
    inject_window: int = 0,
) -> list[Message]:
    """Independent random (src, dst) pairs, optionally spread over a window."""
    if num_messages < 0:
        raise ValueError("num_messages must be non-negative")
    rng = rng_from_seed(seed)
    messages = []
    for i in range(num_messages):
        src = int(rng.integers(topo.num_routers))
        dst = int(rng.integers(topo.num_routers))
        while dst == src:
            dst = int(rng.integers(topo.num_routers))
        inject = int(rng.integers(inject_window + 1))
        messages.append(
            Message(src=src, dests=(dst,), size_bits=size_bits, inject_cycle=inject, msg_id=i)
        )
    return messages


def hotspot_traffic(
    topo: Mesh3D,
    num_messages: int,
    hotspot: int,
    hotspot_fraction: float = 0.5,
    size_bits: int = 256,
    seed: int | np.random.Generator | None = 0,
    inject_window: int = 0,
) -> list[Message]:
    """Uniform traffic where a fraction of messages target one hot router.

    The non-hotspot draw excludes the hotspot router, so exactly the
    requested fraction of messages (in expectation) converges on it; like
    :func:`uniform_random_traffic`, injections spread uniformly over
    ``inject_window`` cycles.
    """
    if not 0 <= hotspot_fraction <= 1:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    if not 0 <= hotspot < topo.num_routers:
        raise IndexError(f"hotspot router {hotspot} out of range")
    if topo.num_routers < 3 and hotspot_fraction < 1:
        # Non-hotspot draws exclude both src and the hotspot, so a third
        # router must exist for the redraw loop to terminate.
        raise ValueError(
            "hotspot traffic with a non-hotspot fraction needs at least "
            f"3 routers, got {topo.num_routers}"
        )
    rng = rng_from_seed(seed)
    messages = []
    for i in range(num_messages):
        src = int(rng.integers(topo.num_routers))
        while src == hotspot:
            src = int(rng.integers(topo.num_routers))
        if rng.random() < hotspot_fraction:
            dst = hotspot
        else:
            dst = int(rng.integers(topo.num_routers))
            while dst == src or dst == hotspot:
                dst = int(rng.integers(topo.num_routers))
        inject = int(rng.integers(inject_window + 1))
        messages.append(
            Message(
                src=src, dests=(dst,), size_bits=size_bits, inject_cycle=inject, msg_id=i
            )
        )
    return messages


def many_to_one_to_many_traffic(
    topo: Mesh3D,
    sources: list[int],
    sinks: list[int],
    size_bits: int = 256,
    replies: bool = True,
    seed: int | np.random.Generator | None = 0,
    inject_window: int = 0,
) -> list[Message]:
    """GNN-shaped traffic: every source multicasts to the shared sink set,
    and (optionally) each sink multicasts a reply back to all sources.

    The src/dest pattern is deterministic; ``inject_window > 0`` draws each
    message's injection cycle uniformly from the window (seeded), matching
    the other generators' sparse-in-time knob.
    """
    if not sources or not sinks:
        raise ValueError("need at least one source and one sink")
    if set(sources) & set(sinks):
        raise ValueError("sources and sinks must be disjoint")
    rng = rng_from_seed(seed)
    messages = []
    msg_id = 0

    def _inject() -> int:
        return int(rng.integers(inject_window + 1)) if inject_window else 0

    for src in sources:
        messages.append(
            Message(
                src=src,
                dests=tuple(sinks),
                size_bits=size_bits,
                inject_cycle=_inject(),
                tag="gather",
                msg_id=msg_id,
            )
        )
        msg_id += 1
    if replies:
        for sink in sinks:
            messages.append(
                Message(
                    src=sink,
                    dests=tuple(sources),
                    size_bits=size_bits,
                    inject_cycle=_inject(),
                    tag="scatter",
                    msg_id=msg_id,
                )
            )
            msg_id += 1
    return messages
