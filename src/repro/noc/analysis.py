"""NoC evaluation utilities: load sweeps, saturation, bisection, hop stats.

Standard network-on-chip characterization on top of the static scheduler:
latency-vs-injection-rate curves (the saturation plot every NoC paper
shows), bisection link counts, and average hop distance under a traffic
pattern.  Used by the design-space exploration and the NoC ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.packet import Message
from repro.noc.schedule import NoCConfig, StaticScheduler
from repro.noc.simulator import BACKENDS, FlitSimulator
from repro.noc.stats import summarize_latencies
from repro.noc.topology import Mesh3D
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class SweepPoint:
    """One injection-rate sample of a load sweep.

    Besides the mean, each point carries the tail of the latency
    distribution (p50/p95/p99 finish-time latencies) — saturation shows in
    the tail long before it moves the mean.
    """

    offered_rate: float  # messages per router per 100 cycles
    average_latency_cycles: float
    makespan_cycles: int
    max_link_load: int
    p50_latency_cycles: float = 0.0
    p95_latency_cycles: float = 0.0
    p99_latency_cycles: float = 0.0

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: latency >> uncontended scale."""
        return self.average_latency_cycles > 10 * 64


def latency_throughput_sweep(
    topo: Mesh3D,
    rates: list[float],
    config: NoCConfig | None = None,
    window_cycles: int = 2000,
    size_bits: int = 256,
    seed: int = 0,
    backend: str = "static",
) -> list[SweepPoint]:
    """Average latency under uniform-random traffic at each offered rate.

    Args:
        topo: the mesh.
        rates: offered load in messages per router per 100 cycles.
        config: NoC parameters.
        window_cycles: injection window; messages arrive uniformly in it.
        size_bits: message payload.
        seed: RNG seed.
        backend: ``"static"`` evaluates the paper's conflict-free schedule
            analyzer; ``"event"``/``"cycle"`` run the flit-level simulator
            instead (the event engine makes long windows affordable).

    Returns:
        One :class:`SweepPoint` per rate, in order.
    """
    if not rates:
        raise ValueError("need at least one rate")
    if any(r <= 0 for r in rates):
        raise ValueError("rates must be positive")
    if backend != "static" and backend not in BACKENDS:
        raise ValueError(
            f"backend must be 'static' or one of {BACKENDS}, got {backend!r}"
        )
    config = config or NoCConfig()
    scheduler = StaticScheduler(topo, config)
    points: list[SweepPoint] = []
    for rate in rates:
        rng = rng_from_seed(seed)
        count = max(1, int(rate * topo.num_routers * window_cycles / 100))
        messages = []
        for i in range(count):
            src = int(rng.integers(topo.num_routers))
            dst = int(rng.integers(topo.num_routers))
            while dst == src:
                dst = int(rng.integers(topo.num_routers))
            messages.append(
                Message(
                    src=src,
                    dests=(dst,),
                    size_bits=size_bits,
                    inject_cycle=int(rng.integers(window_cycles)),
                    msg_id=i,
                )
            )
        if backend == "static":
            result = scheduler.simulate(messages, multicast=False)
            latencies = [
                result.message_finish[m.msg_id] - m.inject_cycle for m in messages
            ]
        else:
            result = FlitSimulator(topo, config, backend=backend).simulate(messages)
            latencies = [
                result.message_finish[(m.msg_id, m.dests[0])] - m.inject_cycle
                for m in messages
            ]
        summary = summarize_latencies(latencies)
        points.append(
            SweepPoint(
                offered_rate=rate,
                average_latency_cycles=summary.mean,
                makespan_cycles=result.makespan_cycles,
                max_link_load=result.link_stats.max_link_load,
                p50_latency_cycles=summary.p50,
                p95_latency_cycles=summary.p95,
                p99_latency_cycles=summary.p99,
            )
        )
    return points


def saturation_rate(points: list[SweepPoint]) -> float | None:
    """First offered rate at which the network saturates (None if never)."""
    for point in points:
        if point.saturated:
            return point.offered_rate
    return None


def bisection_links(topo: Mesh3D) -> int:
    """Directed links crossing the X mid-plane — the bisection bandwidth
    in links (multiply by flit rate for bits/s)."""
    cut = topo.width // 2
    count = 0
    for src, dst in topo.links():
        x1 = topo.coords(src)[0]
        x2 = topo.coords(dst)[0]
        if (x1 < cut) != (x2 < cut):
            count += 1
    return count


def average_hop_count(
    topo: Mesh3D, pairs: list[tuple[int, int]] | None = None
) -> float:
    """Mean minimal hop distance, over ``pairs`` or all distinct pairs."""
    if pairs is None:
        n = topo.num_routers
        total = 0
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    total += topo.distance(src, dst)
        return total / (n * (n - 1))
    if not pairs:
        raise ValueError("pairs must be non-empty")
    return float(np.mean([topo.distance(s, d) for s, d in pairs]))
