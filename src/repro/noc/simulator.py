"""Flit-level, cycle-stepped wormhole/cut-through simulator.

Used to validate the static schedule analyzer on small traces: for an
uncontended packet both models give *identical* latencies
(``hops * hop_cycles + flits - 1`` after injection); under contention the
dynamic simulator may finish earlier (it interleaves flits where the static
schedule serializes whole packets), never later.  Tests assert both
properties.

The model: deterministic XYZ routes, one flit per link per cycle, flits of
a packet cross each link in order, a flit becomes eligible for the next
link ``hop_cycles`` after it started crossing the previous one, and a link
is owned by a single packet from head acquisition until its tail has
crossed (wormhole ownership with unlimited router buffering, i.e. virtual
cut-through).  Arbitration is deterministic by message id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.packet import Message
from repro.noc.routing import dimension_order_route, route_links
from repro.noc.schedule import NoCConfig
from repro.noc.stats import LinkStats
from repro.noc.topology import Link, Mesh3D


@dataclass
class _PacketState:
    msg: Message
    route: list[Link]
    flits: int
    acquired: int = 0  # links acquired so far
    crossed: list[int] = field(default_factory=list)  # flits crossed per link
    cross_time: list[list[int]] = field(default_factory=list)
    finish_cycle: int | None = None

    def __post_init__(self) -> None:
        self.crossed = [0] * len(self.route)
        self.cross_time = [[-1] * self.flits for _ in self.route]


@dataclass
class SimulationResult:
    """Timing and link statistics from the flit-level simulation."""

    makespan_cycles: int
    message_finish: dict[int, int]
    link_stats: LinkStats
    config: NoCConfig

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles * self.config.cycle_time


class FlitSimulator:
    """Cycle-stepped simulator over a mesh (unicast packets).

    Multicast messages are expanded into unicast packets; the static
    scheduler is the reference model for tree multicast.
    """

    def __init__(self, topo: Mesh3D, config: NoCConfig | None = None) -> None:
        self.topo = topo
        self.config = config or NoCConfig()

    def simulate(self, messages: list[Message], max_cycles: int = 1_000_000) -> SimulationResult:
        """Run until every packet is delivered (or ``max_cycles`` elapse)."""
        cfg = self.config
        packets: list[_PacketState] = []
        next_id = 0
        for msg in sorted(messages, key=lambda m: (m.inject_cycle, m.src, m.dests)):
            for dst in msg.dests:
                route = route_links(
                    dimension_order_route(
                        self.topo, msg.src, dst, cfg.routing_order
                    )
                )
                if cfg.model_local_ports:
                    route = (
                        [self.topo.injection_link(msg.src)]
                        + route
                        + [self.topo.ejection_link(dst)]
                    )
                flits = msg.num_flits(cfg.flit_bits)
                sub = Message(
                    src=msg.src,
                    dests=(dst,),
                    size_bits=msg.size_bits,
                    inject_cycle=msg.inject_cycle,
                    tag=msg.tag,
                    msg_id=next_id,
                )
                packets.append(_PacketState(msg=sub, route=route, flits=flits))
                next_id += 1

        owner: dict[Link, int] = {}
        stats = LinkStats(self.topo)
        pending = set(range(len(packets)))
        cycle = -1
        while pending:
            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles with "
                    f"{len(pending)} packets in flight"
                )
            # Phase 1: head-flit link acquisition, deterministic priority.
            for pid in sorted(pending):
                pkt = packets[pid]
                while pkt.acquired < len(pkt.route):
                    link = pkt.route[pkt.acquired]
                    if self._head_ready(pkt, pkt.acquired) > cycle:
                        break
                    if link in owner:
                        break
                    owner[link] = pid
                    pkt.acquired += 1
            # Phase 2: flit transfers on owned links.
            for pid in sorted(pending):
                pkt = packets[pid]
                for i in range(pkt.acquired):
                    f = pkt.crossed[i]
                    if f >= pkt.flits:
                        continue
                    if self._flit_ready(pkt, i, f) > cycle:
                        continue
                    pkt.cross_time[i][f] = cycle
                    pkt.crossed[i] += 1
                    stats.add(pkt.route[i], 1)
                    if pkt.crossed[i] == pkt.flits:
                        del owner[pkt.route[i]]
            # Phase 3: retire finished packets.
            done = [
                pid
                for pid in pending
                if packets[pid].crossed and packets[pid].crossed[-1] == packets[pid].flits
            ]
            for pid in done:
                pkt = packets[pid]
                pkt.finish_cycle = pkt.cross_time[-1][-1] + cfg.hop_cycles
                pending.discard(pid)
            # Zero-hop packets cannot exist (Message forbids src == dst).

        finish = {p.msg.msg_id: p.finish_cycle for p in packets if p.finish_cycle is not None}
        makespan = max(finish.values(), default=0)
        return SimulationResult(
            makespan_cycles=makespan,
            message_finish=finish,
            link_stats=stats,
            config=cfg,
        )

    def _head_ready(self, pkt: _PacketState, hop: int) -> int:
        """Earliest cycle the head flit can start crossing link ``hop``."""
        if hop == 0:
            return pkt.msg.inject_cycle
        t_prev = pkt.cross_time[hop - 1][0]
        if t_prev < 0:
            return 1 << 60  # head has not crossed the previous link yet
        return t_prev + self.config.hop_cycles

    def _flit_ready(self, pkt: _PacketState, hop: int, flit: int) -> int:
        """Earliest cycle flit ``flit`` can start crossing link ``hop``."""
        if hop == 0:
            upstream = pkt.msg.inject_cycle
        else:
            t_prev = pkt.cross_time[hop - 1][flit]
            if t_prev < 0:
                return 1 << 60
            upstream = t_prev + self.config.hop_cycles
        if flit == 0:
            return upstream
        t_before = pkt.cross_time[hop][flit - 1]
        if t_before < 0:
            return 1 << 60
        return max(upstream, t_before + 1)
