"""Flit-level wormhole/cut-through simulator with two backends.

Used to validate the static schedule analyzer: for an uncontended packet
both models give *identical* latencies (``hops * hop_cycles + flits - 1``
after injection); under contention the dynamic simulator may finish earlier
(it interleaves flits where the static schedule serializes whole packets),
never later.  Tests assert both properties.

The model: deterministic XYZ routes, one flit per link per cycle, flits of
a packet cross each link in order, a flit becomes eligible for the next
link ``hop_cycles`` after it started crossing the previous one, and a link
is owned by a single packet from head acquisition until its tail has
crossed (wormhole ownership with unlimited router buffering, i.e. virtual
cut-through).  Arbitration is deterministic by message id.

Two interchangeable backends implement the model:

* ``"event"`` (default) — :class:`repro.noc.events.EventEngine`, a
  priority queue of link grant/release events whose cost scales with
  flit-hops, not elapsed cycles.  Use it for sweeps and large traces.
* ``"cycle"`` — the original cycle-stepped loop, kept as the reference
  oracle the event engine is differentially tested against.

Both backends produce bit-identical results (finish times, makespan, and
link statistics); ``benchmarks/test_bench_noc_sim.py`` records the
speedup and ``tests/test_noc_events.py`` enforces the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.events import EventEngine, ExpandedPacket
from repro.noc.packet import Message
from repro.noc.routing import dimension_order_route, route_links
from repro.noc.schedule import NoCConfig
from repro.noc.stats import LinkStats
from repro.noc.topology import Link, Mesh3D

#: Valid ``backend`` arguments for :class:`FlitSimulator`.
BACKENDS = ("event", "cycle")


@dataclass
class _PacketState:
    """Cycle-backend bookkeeping for one unicast packet."""

    packet: ExpandedPacket
    acquired: int = 0  # links acquired so far
    crossed: list[int] = field(default_factory=list)  # flits crossed per link
    cross_time: list[list[int]] = field(default_factory=list)
    finish_cycle: int | None = None

    def __post_init__(self) -> None:
        self.crossed = [0] * len(self.packet.route)
        self.cross_time = [[-1] * self.packet.flits for _ in self.packet.route]


@dataclass
class SimulationResult:
    """Timing and link statistics from the flit-level simulation.

    ``message_finish`` is keyed by the caller's ``(msg_id, dest)`` pair, so
    multicast expansion stays addressable: every destination of a multicast
    message reports its own finish cycle under the original ``msg_id``.
    """

    makespan_cycles: int
    message_finish: dict[tuple[int, int], int]
    link_stats: LinkStats
    config: NoCConfig

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles * self.config.cycle_time

    def finish_by_message(self) -> dict[int, int]:
        """Per-``msg_id`` finish cycles (max over a multicast's destinations).

        This is the granularity :class:`repro.noc.schedule.ScheduleResult`
        reports, so it is what cross-model comparisons should use.
        """
        out: dict[int, int] = {}
        for (msg_id, _), cycle in self.message_finish.items():
            out[msg_id] = max(out.get(msg_id, 0), cycle)
        return out


class FlitSimulator:
    """Deterministic flit-level simulator over a mesh (unicast packets).

    Multicast messages are expanded into unicast packets; the static
    scheduler is the reference model for tree multicast.

    Args:
        topo: the mesh.
        config: NoC parameters (paper defaults when omitted).
        backend: ``"event"`` (fast, default) or ``"cycle"`` (the reference
            oracle); both are bit-identical.
    """

    def __init__(
        self,
        topo: Mesh3D,
        config: NoCConfig | None = None,
        backend: str = "event",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.topo = topo
        self.config = config or NoCConfig()
        self.backend = backend

    def simulate(
        self,
        messages: list[Message],
        max_cycles: int = 1_000_000,
        backend: str | None = None,
    ) -> SimulationResult:
        """Run until every packet is delivered.

        Raises :class:`RuntimeError` if delivery does not complete within
        ``max_cycles`` simulated cycles (cycles ``0 .. max_cycles - 1``).
        ``backend`` overrides the instance default for this call.
        """
        backend = backend or self.backend
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        cfg = self.config
        packets = self._expand(messages)
        stats = LinkStats(self.topo)
        if not packets:
            return SimulationResult(
                makespan_cycles=0, message_finish={}, link_stats=stats, config=cfg
            )
        if backend == "event":
            finish = EventEngine(self.topo, cfg).run(packets, stats, max_cycles)
        else:
            finish = self._run_cycle(packets, stats, max_cycles)
        return SimulationResult(
            makespan_cycles=max(finish.values()),
            message_finish=finish,
            link_stats=stats,
            config=cfg,
        )

    # ------------------------------------------------------------------
    # Multicast expansion (shared by both backends)
    # ------------------------------------------------------------------
    def _expand(self, messages: list[Message]) -> list[ExpandedPacket]:
        """Expand multicasts into unicast packets in priority order.

        The list index is the packet's arbitration priority (lower id wins
        link grants), matching the static scheduler's processing order.
        """
        cfg = self.config
        packets: list[ExpandedPacket] = []
        seen: set[tuple[int, int]] = set()
        ordered = sorted(
            messages, key=lambda m: (m.inject_cycle, m.src, m.dests, m.msg_id)
        )
        for msg in ordered:
            for dst in msg.dests:
                key = (msg.msg_id, dst)
                if key in seen:
                    raise ValueError(
                        f"duplicate (msg_id, dest) pair {key}; message ids "
                        f"must be unique per destination for result keying"
                    )
                seen.add(key)
                route = route_links(
                    dimension_order_route(self.topo, msg.src, dst, cfg.routing_order)
                )
                if cfg.model_local_ports:
                    route = (
                        [self.topo.injection_link(msg.src)]
                        + route
                        + [self.topo.ejection_link(dst)]
                    )
                packets.append(
                    ExpandedPacket(
                        key=key,
                        inject_cycle=msg.inject_cycle,
                        route=tuple(route),
                        flits=msg.num_flits(cfg.flit_bits),
                    )
                )
        return packets

    # ------------------------------------------------------------------
    # Cycle-stepped reference backend
    # ------------------------------------------------------------------
    def _run_cycle(
        self,
        packets: list[ExpandedPacket],
        stats: LinkStats,
        max_cycles: int,
    ) -> dict[tuple[int, int], int]:
        cfg = self.config
        states = [_PacketState(packet=p) for p in packets]
        owner: dict[Link, int] = {}
        pending = set(range(len(states)))
        cycle = -1
        while pending:
            cycle += 1
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles with "
                    f"{len(pending)} packets in flight"
                )
            # Phase 1: head-flit link acquisition, deterministic priority.
            for pid in sorted(pending):
                pkt = states[pid]
                while pkt.acquired < len(pkt.packet.route):
                    link = pkt.packet.route[pkt.acquired]
                    if self._head_ready(pkt, pkt.acquired) > cycle:
                        break
                    if link in owner:
                        break
                    owner[link] = pid
                    pkt.acquired += 1
            # Phase 2: flit transfers on owned links.
            for pid in sorted(pending):
                pkt = states[pid]
                for i in range(pkt.acquired):
                    f = pkt.crossed[i]
                    if f >= pkt.packet.flits:
                        continue
                    if self._flit_ready(pkt, i, f) > cycle:
                        continue
                    pkt.cross_time[i][f] = cycle
                    pkt.crossed[i] += 1
                    stats.add(pkt.packet.route[i], 1)
                    if pkt.crossed[i] == pkt.packet.flits:
                        del owner[pkt.packet.route[i]]
            # Phase 3: retire finished packets.
            done = [
                pid
                for pid in pending
                if states[pid].crossed
                and states[pid].crossed[-1] == states[pid].packet.flits
            ]
            for pid in done:
                pkt = states[pid]
                pkt.finish_cycle = pkt.cross_time[-1][-1] + cfg.hop_cycles
                pending.discard(pid)
            # Zero-hop packets cannot exist (Message forbids src == dst).

        return {
            s.packet.key: s.finish_cycle
            for s in states
            if s.finish_cycle is not None
        }

    def _head_ready(self, pkt: _PacketState, hop: int) -> int:
        """Earliest cycle the head flit can start crossing link ``hop``."""
        if hop == 0:
            return pkt.packet.inject_cycle
        t_prev = pkt.cross_time[hop - 1][0]
        if t_prev < 0:
            return 1 << 60  # head has not crossed the previous link yet
        return t_prev + self.config.hop_cycles

    def _flit_ready(self, pkt: _PacketState, hop: int, flit: int) -> int:
        """Earliest cycle flit ``flit`` can start crossing link ``hop``."""
        if hop == 0:
            upstream = pkt.packet.inject_cycle
        else:
            t_prev = pkt.cross_time[hop - 1][flit]
            if t_prev < 0:
                return 1 << 60
            upstream = t_prev + self.config.hop_cycles
        if flit == 0:
            return upstream
        t_before = pkt.cross_time[hop][flit - 1]
        if t_before < 0:
            return 1 << 60
        return max(upstream, t_before + 1)
