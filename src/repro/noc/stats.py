"""Aggregated NoC statistics shared by both performance models.

Besides the per-link flit accounting, this module hosts the shared
latency-distribution helpers (:func:`percentile`,
:func:`summarize_latencies`): NoC finish-time analysis and the serving
engine's per-tenant SLO metrics both report the same p50/p95/p99 summary,
so the math lives once, here.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.noc.topology import Link, Mesh3D


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` with linear interpolation.

    Matches numpy's default (``method="linear"``) without requiring the
    caller to materialize an array: rank ``(n - 1) * q / 100`` is
    interpolated between its two neighbouring order statistics.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        raise ValueError("cannot take a percentile of no values")
    return _ordered_percentile(sorted(values), q)


def _ordered_percentile(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` on an already-sorted population (no re-sort)."""
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo]) * (1.0 - frac) + float(ordered[hi]) * frac


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of one latency population (any time unit)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def summarize_latencies(values) -> LatencySummary:
    """p50/p95/p99 summary of ``values`` (all-zero for an empty population).

    An empty population is not an error: a tenant that completed nothing
    during a serving window, or a traffic class with no messages, simply
    reports zeros alongside ``count=0``.

    ``values`` is normally a sequence of floats, but a quantile sketch
    (anything exposing a zero-argument ``summary()`` — see
    :mod:`repro.obs.sketch`) is accepted too and answers through its own
    backend, so callers can swap a stored population for a
    constant-memory estimator without changing their reporting code.
    """
    summarize = getattr(values, "summary", None)
    if summarize is not None:
        return summarize()
    if len(values) == 0:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
    ordered = sorted(float(v) for v in values)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_ordered_percentile(ordered, 50),
        p95=_ordered_percentile(ordered, 95),
        p99=_ordered_percentile(ordered, 99),
        max=ordered[-1],
    )


@dataclass
class LinkStats:
    """Per-link flit counts, split planar vs. vertical (TSV)."""

    topo: Mesh3D
    flits: dict[Link, int] = field(default_factory=dict)

    def add(self, link: Link, count: int) -> None:
        if count < 0:
            raise ValueError("flit count must be non-negative")
        self.flits[link] = self.flits.get(link, 0) + count

    @property
    def total_flit_hops(self) -> int:
        return sum(self.flits.values())

    @property
    def local_flit_hops(self) -> int:
        """Flits crossing injection/ejection ports."""
        return sum(c for l, c in self.flits.items() if self.topo.is_local(l))

    @property
    def planar_flit_hops(self) -> int:
        return sum(
            c
            for l, c in self.flits.items()
            if not self.topo.is_local(l) and not self.topo.is_vertical(l)
        )

    @property
    def vertical_flit_hops(self) -> int:
        return sum(c for l, c in self.flits.items() if self.topo.is_vertical(l))

    @property
    def max_link_load(self) -> int:
        """Flits on the most loaded link — the serialization bottleneck."""
        return max(self.flits.values(), default=0)

    def utilization(
        self, makespan_cycles: int, include_local_ports: bool | None = None
    ) -> float:
        """Mean per-link occupancy over the schedule window.

        The denominator must count the same link population the recorded
        flits crossed, or utilization can exceed 1.0.  With
        ``include_local_ports=None`` (default) injection/ejection ports are
        counted whenever local flits were recorded (i.e. the simulation ran
        with ``model_local_ports=True``); pass ``True``/``False`` to force
        either population.
        """
        if makespan_cycles <= 0:
            return 0.0
        if include_local_ports is None:
            include_local_ports = self.local_flit_hops > 0
        num_links = len(self.topo.links())
        if include_local_ports:
            # One injection + one ejection port per router.
            num_links += 2 * self.topo.num_routers
        return self.total_flit_hops / (num_links * makespan_cycles)
