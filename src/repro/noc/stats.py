"""Aggregated NoC statistics shared by both performance models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.topology import Link, Mesh3D


@dataclass
class LinkStats:
    """Per-link flit counts, split planar vs. vertical (TSV)."""

    topo: Mesh3D
    flits: dict[Link, int] = field(default_factory=dict)

    def add(self, link: Link, count: int) -> None:
        if count < 0:
            raise ValueError("flit count must be non-negative")
        self.flits[link] = self.flits.get(link, 0) + count

    @property
    def total_flit_hops(self) -> int:
        return sum(self.flits.values())

    @property
    def local_flit_hops(self) -> int:
        """Flits crossing injection/ejection ports."""
        return sum(c for l, c in self.flits.items() if self.topo.is_local(l))

    @property
    def planar_flit_hops(self) -> int:
        return sum(
            c
            for l, c in self.flits.items()
            if not self.topo.is_local(l) and not self.topo.is_vertical(l)
        )

    @property
    def vertical_flit_hops(self) -> int:
        return sum(c for l, c in self.flits.items() if self.topo.is_vertical(l))

    @property
    def max_link_load(self) -> int:
        """Flits on the most loaded link — the serialization bottleneck."""
        return max(self.flits.values(), default=0)

    def utilization(
        self, makespan_cycles: int, include_local_ports: bool | None = None
    ) -> float:
        """Mean per-link occupancy over the schedule window.

        The denominator must count the same link population the recorded
        flits crossed, or utilization can exceed 1.0.  With
        ``include_local_ports=None`` (default) injection/ejection ports are
        counted whenever local flits were recorded (i.e. the simulation ran
        with ``model_local_ports=True``); pass ``True``/``False`` to force
        either population.
        """
        if makespan_cycles <= 0:
            return 0.0
        if include_local_ports is None:
            include_local_ports = self.local_flit_hops > 0
        num_links = len(self.topo.links())
        if include_local_ports:
            # One injection + one ejection port per router.
            num_links += 2 * self.topo.num_routers
        return self.total_flit_hops / (num_links * makespan_cycles)
