"""Event-driven engine for the flit-level wormhole simulator.

Replaces the cycle-stepped inner loop of :mod:`repro.noc.simulator` with a
priority queue of link events, so simulation cost scales with the number of
*link grants* (one per packet per hop) instead of
``elapsed cycles x pending packets x hops``.  On sparse-in-time traffic
(wide injection windows) this is orders of magnitude faster, which is what
makes large-mesh campaign sweeps affordable.

The engine is **bit-identical** to the cycle-stepped reference.  The
reference executes three phases per cycle; each maps onto an event:

* *Phase 1 (acquisition)* — a packet becomes a contender for hop ``i``
  exactly ``hop_cycles`` after its head flit crossed hop ``i-1`` (or at
  ``inject_cycle`` for hop 0).  The engine schedules that instant as an
  ``ARRIVE`` event.
* *Phase 2 (release)* — the reference deletes link ownership in the same
  cycle the tail flit crosses, but phase 1 of that cycle has already run,
  so the link is only acquirable from the *next* cycle.  The engine
  schedules a ``FREE`` event at ``tail + 1``.
* *Arbitration* — each cycle the reference grants a free link to the
  lowest-internal-id contender whose head is ready.  The engine ingests
  every ``ARRIVE``/``FREE`` event of one cycle before deciding any grant,
  then picks the minimum packet id among the link's waiters, which is the
  same winner (contenders only ever enter the wait set at their ready
  cycle, so every queued waiter is eligible).

Within one packet the per-flit schedule needs no events at all: with one
flit per cycle on an owned link, flit ``f`` crosses hop ``i`` at
``t(i, f) = max(t(i-1, f) + hop_cycles, t(i, f-1) + 1)``, which collapses
to two per-hop recurrences (``head`` is the grant cycle)::

    head_i = grant cycle                    # >= head_{i-1} + hop_cycles
    tail_i = max(head_i + flits - 1, tail_{i-1} + hop_cycles)

so the engine materializes neither cycles nor per-flit state.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.noc.schedule import NoCConfig
from repro.noc.stats import LinkStats
from repro.noc.topology import Link, Mesh3D

#: Event kinds; ``FREE`` and ``ARRIVE`` at the same cycle are ingested
#: together before any grant, so their relative heap order is irrelevant.
_ARRIVE = 0
_FREE = 1


@dataclass(frozen=True)
class ExpandedPacket:
    """One unicast packet after multicast expansion.

    ``key`` is the caller-facing identity ``(msg_id, dest)`` — results are
    reported under it, never under internal packet ids.
    """

    key: tuple[int, int]
    inject_cycle: int
    route: tuple[Link, ...]
    flits: int


@dataclass
class _Flight:
    """Progress of one packet: the next hop to acquire and the head/tail
    crossing cycles on the most recently granted hop."""

    hop: int = 0
    head: int = -1
    tail: int = -1


class EventEngine:
    """Priority-queue simulation of the deterministic wormhole model."""

    def __init__(self, topo: Mesh3D, config: NoCConfig) -> None:
        self.topo = topo
        self.config = config

    def run(
        self,
        packets: list[ExpandedPacket],
        stats: LinkStats,
        max_cycles: int,
    ) -> dict[tuple[int, int], int]:
        """Simulate ``packets`` and return per-``(msg_id, dest)`` finish cycles.

        ``stats`` accumulates per-link flit counts (identical to the cycle
        backend's).  Raises :class:`RuntimeError` when delivery needs
        ``max_cycles`` cycles or more, mirroring the reference watchdog.
        """
        hop_cycles = self.config.hop_cycles
        flights = [_Flight() for _ in packets]
        events: list[tuple[int, int, object]] = []
        for pid, pkt in enumerate(packets):
            events.append((pkt.inject_cycle, _ARRIVE, pid))
        heapq.heapify(events)

        busy: set[Link] = set()
        waiters: dict[Link, list[int]] = {}
        finish: dict[tuple[int, int], int] = {}

        while events:
            now = events[0][0]
            touched: list[Link] = []
            # Ingest every event of this cycle before any grant decision —
            # this is what preserves the reference's same-cycle arbitration.
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _FREE:
                    busy.discard(payload)  # type: ignore[arg-type]
                    touched.append(payload)  # type: ignore[arg-type]
                else:
                    pid = payload  # type: ignore[assignment]
                    link = packets[pid].route[flights[pid].hop]
                    heapq.heappush(waiters.setdefault(link, []), pid)
                    touched.append(link)
            for link in touched:
                queue = waiters.get(link)
                if not queue or link in busy:
                    continue
                pid = heapq.heappop(queue)
                pkt = packets[pid]
                flight = flights[pid]
                busy.add(link)
                tail = now + pkt.flits - 1
                if flight.hop > 0:
                    tail = max(tail, flight.tail + hop_cycles)
                flight.head = now
                flight.tail = tail
                stats.add(link, pkt.flits)
                heapq.heappush(events, (tail + 1, _FREE, link))
                flight.hop += 1
                if flight.hop < len(pkt.route):
                    heapq.heappush(events, (now + hop_cycles, _ARRIVE, pid))
                else:
                    finish[pkt.key] = tail + hop_cycles

        # Watchdog: the cycle-stepped reference executes cycles
        # [0, max_cycles) and raises on entering cycle ``max_cycles`` with
        # packets still in flight, i.e. whenever any tail crosses its last
        # link at or after ``max_cycles``.
        late = sum(1 for flight in flights if flight.tail >= max_cycles)
        if late:
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles with "
                f"{late} packets in flight"
            )
        return finish
