"""NoC substrate: 3D mesh topology, deterministic routing, multicast, and
two complementary performance models.

* :mod:`repro.noc.schedule` — the paper's methodology: traffic is statically
  scheduled, conflict-free, deterministic (Sec. V.A).  The scheduler
  serializes wormhole packets over shared links and reports makespan,
  per-message latency, link loads, and energy.
* :mod:`repro.noc.simulator` — a flit-level wormhole simulator used to
  validate the static scheduler.  Two bit-identical backends: the default
  event-driven engine (:mod:`repro.noc.events`, cost scales with
  flit-hops) and the cycle-stepped reference oracle.
"""

from repro.noc.analysis import (
    average_hop_count,
    bisection_links,
    latency_throughput_sweep,
    saturation_rate,
)
from repro.noc.packet import Message
from repro.noc.routing import (
    dimension_order_route,
    multicast_tree,
    route_links,
    xyz_route,
)
from repro.noc.events import EventEngine, ExpandedPacket
from repro.noc.schedule import NoCConfig, ScheduleResult, StaticScheduler
from repro.noc.simulator import BACKENDS, FlitSimulator, SimulationResult
from repro.noc.stats import (
    LatencySummary,
    LinkStats,
    percentile,
    summarize_latencies,
)
from repro.noc.topology import Mesh2D, Mesh3D
from repro.noc.traffic_gen import (
    hotspot_traffic,
    many_to_one_to_many_traffic,
    uniform_random_traffic,
)

__all__ = [
    "Mesh3D",
    "Mesh2D",
    "Message",
    "xyz_route",
    "dimension_order_route",
    "route_links",
    "multicast_tree",
    "NoCConfig",
    "StaticScheduler",
    "ScheduleResult",
    "FlitSimulator",
    "SimulationResult",
    "BACKENDS",
    "EventEngine",
    "ExpandedPacket",
    "LinkStats",
    "LatencySummary",
    "percentile",
    "summarize_latencies",
    "uniform_random_traffic",
    "hotspot_traffic",
    "many_to_one_to_many_traffic",
    "latency_throughput_sweep",
    "saturation_rate",
    "bisection_links",
    "average_hop_count",
]
