"""Static conflict-free wormhole schedule analyzer — the paper's NoC model.

Paper Sec. V.A: "The traffic across the NoC is also statically determined
to ensure conflict-free routing."  This module reproduces that methodology:
messages are laid out deterministically (in injection order), each packet
reserves every link on its route for its full flit train, and downstream
hops begin after the wormhole pipeline delay.  No packet ever waits inside
the network — conflicts are resolved at schedule time by delaying the
*start* of a packet until its links free up, which is exactly what a
statically scheduled NoC does.

Multicast packets traverse their XYZ tree once, forking at branch routers;
unicast mode replicates one packet per destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.packet import Message
from repro.noc.routing import multicast_tree, route_links, tree_depth_order, xyz_route
from repro.noc.stats import LinkStats
from repro.noc.topology import Link, Mesh3D
from repro.utils.units import GHZ, PICO


@dataclass(frozen=True)
class NoCConfig:
    """NoC microarchitecture parameters.

    Defaults: 400 MHz routers (a low-power NoC clocked ~40x the 10 MHz
    ReRAM arrays), 32-bit flits, 2-cycle router pipeline + 1-cycle link
    traversal (a standard low-latency wormhole router), per-flit energies
    from published 3D NoC budgets (router ~1.5 pJ, planar link
    ~1.2 pJ/hop, TSV ~0.05 pJ/hop).
    """

    flit_bits: int = 32
    clock_hz: float = 0.4 * GHZ
    router_cycles: int = 2
    link_cycles: int = 1
    router_energy_per_flit: float = 1.5 * PICO
    planar_link_energy_per_flit: float = 1.2 * PICO
    vertical_link_energy_per_flit: float = 0.05 * PICO
    local_port_energy_per_flit: float = 0.3 * PICO
    # Model tile<->router injection/ejection ports: the source tile's
    # injection link serializes its packets, and a destination's ejection
    # link serializes everything converging on it (the many-to-one
    # contention GNN traffic creates).
    model_local_ports: bool = True
    # "pipelined": links queue independently with cut-through chaining —
    # the efficient time-multiplexed schedule a conflict-free static
    # router would produce.  "atomic": each packet reserves its whole
    # route/tree for its full duration — a conservative wormhole bound.
    schedule_mode: str = "pipelined"
    # Dimension order for deterministic routing: "xyz" (planar first) or
    # "zxy" (vertical first, natural for the V/E sandwich).
    routing_order: str = "xyz"

    def __post_init__(self) -> None:
        if self.flit_bits < 1:
            raise ValueError("flit width must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.router_cycles < 1 or self.link_cycles < 1:
            raise ValueError("pipeline latencies must be at least one cycle")
        if self.schedule_mode not in ("pipelined", "atomic"):
            raise ValueError(
                f"schedule_mode must be 'pipelined' or 'atomic', "
                f"got {self.schedule_mode!r}"
            )
        if sorted(self.routing_order) != ["x", "y", "z"]:
            raise ValueError(
                f"routing_order must be a permutation of 'xyz', "
                f"got {self.routing_order!r}"
            )

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def hop_cycles(self) -> int:
        """Cycles for a flit to progress one hop (router + link)."""
        return self.router_cycles + self.link_cycles


@dataclass
class ScheduleResult:
    """Outcome of scheduling one message set."""

    makespan_cycles: int
    message_finish: dict[int, int]  # msg_id -> cycle its last flit arrives
    link_stats: LinkStats
    config: NoCConfig
    tag_finish: dict[str, int] = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles * self.config.cycle_time

    def tag_finish_seconds(self, tag: str) -> float:
        """Completion time of all messages carrying ``tag``."""
        if tag not in self.tag_finish:
            raise KeyError(f"no messages carried tag {tag!r}")
        return self.tag_finish[tag] * self.config.cycle_time

    @property
    def total_flit_hops(self) -> int:
        return self.link_stats.total_flit_hops

    def energy_joules(self) -> float:
        """Network energy: every flit-hop pays router + link energy."""
        cfg = self.config
        planar = self.link_stats.planar_flit_hops
        vertical = self.link_stats.vertical_flit_hops
        local = self.link_stats.local_flit_hops
        return (
            (planar + vertical + local) * cfg.router_energy_per_flit
            + planar * cfg.planar_link_energy_per_flit
            + vertical * cfg.vertical_link_energy_per_flit
            + local * cfg.local_port_energy_per_flit
        )


class StaticScheduler:
    """Deterministic wormhole schedule over a mesh."""

    def __init__(self, topo: Mesh3D, config: NoCConfig | None = None) -> None:
        self.topo = topo
        self.config = config or NoCConfig()

    def simulate(self, messages: list[Message], multicast: bool = True) -> ScheduleResult:
        """Schedule ``messages`` and return timing/energy statistics.

        Args:
            messages: the transfer set; multi-destination messages use a
                multicast tree when ``multicast`` is True, otherwise they
                are expanded into one unicast packet per destination.
            multicast: select tree-multicast vs. unicast routing.
        """
        cfg = self.config
        link_free: dict[Link, int] = {}
        stats = LinkStats(self.topo)
        finish: dict[int, int] = {}
        tag_finish: dict[str, int] = {}
        makespan = 0

        ordered = sorted(
            messages, key=lambda m: (m.inject_cycle, m.src, m.dests, m.msg_id)
        )
        for msg in ordered:
            flits = msg.num_flits(cfg.flit_bits)
            if multicast or not msg.is_multicast:
                last = self._schedule_tree(msg, flits, link_free, stats)
            else:
                last = 0
                for dst in msg.dests:
                    unicast = Message(
                        src=msg.src,
                        dests=(dst,),
                        size_bits=msg.size_bits,
                        inject_cycle=msg.inject_cycle,
                        tag=msg.tag,
                        msg_id=msg.msg_id,
                    )
                    last = max(
                        last, self._schedule_tree(unicast, flits, link_free, stats)
                    )
            finish[msg.msg_id] = last
            makespan = max(makespan, last)
            if msg.tag:
                tag_finish[msg.tag] = max(tag_finish.get(msg.tag, 0), last)

        return ScheduleResult(
            makespan_cycles=makespan,
            message_finish=finish,
            link_stats=stats,
            config=self.config,
            tag_finish=tag_finish,
        )

    def _schedule_tree(
        self,
        msg: Message,
        flits: int,
        link_free: dict[Link, int],
        stats: LinkStats,
    ) -> int:
        """Reserve the (tree of) links for one packet; return finish cycle.

        The head flit leaves the source when every tree link can accept the
        full flit train without colliding with earlier reservations; each
        downstream link starts ``hop_cycles`` after its parent (wormhole
        pipelining).  This keeps the schedule conflict-free without
        in-network buffering, matching the paper's static methodology.
        """
        cfg = self.config
        tree = multicast_tree(self.topo, msg.src, msg.dests, cfg.routing_order)
        if cfg.model_local_ports:
            # Wrap the router tree with the tile<->router port links.
            inj = self.topo.injection_link(msg.src)
            wrapped: dict[Link, Link | None] = {inj: None}
            for link, parent in tree.items():
                wrapped[link] = parent if parent is not None else inj
            for dst in msg.dests:
                last_in = next(l for l in tree if l[1] == dst)
                wrapped[self.topo.ejection_link(dst)] = last_in
            tree = wrapped
        ordered_links = tree_depth_order(tree)
        depth: dict[Link, int] = {}
        for link in ordered_links:
            parent = tree[link]
            depth[link] = 0 if parent is None else depth[parent] + 1
        if cfg.schedule_mode == "atomic":
            # Earliest head-departure so no link conflicts with prior packets.
            start = msg.inject_cycle
            for link in ordered_links:
                earliest = link_free.get(link, 0) - depth[link] * cfg.hop_cycles
                start = max(start, earliest)
            last_finish = start
            for link in ordered_links:
                link_start = start + depth[link] * cfg.hop_cycles
                link_free[link] = link_start + flits
                stats.add(link, flits)
                last_finish = max(last_finish, link_start + cfg.hop_cycles + flits - 1)
            return last_finish
        # Pipelined (cut-through) mode: each link queues independently; a
        # link may start once its queue frees AND the head has arrived from
        # the parent link.  Static conflict-free schedules achieve this
        # time-division of shared links.
        start_at: dict[Link, int] = {}
        last_finish = msg.inject_cycle
        for link in ordered_links:
            parent = tree[link]
            head_arrival = (
                msg.inject_cycle
                if parent is None
                else start_at[parent] + cfg.hop_cycles
            )
            link_start = max(link_free.get(link, 0), head_arrival)
            start_at[link] = link_start
            link_free[link] = link_start + flits
            stats.add(link, flits)
            last_finish = max(last_finish, link_start + cfg.hop_cycles + flits - 1)
        return last_finish
