"""Command-line interface: ``python -m repro <command>``.

Commands:
    info                       print the architecture (Table I) and dataset
                               (Table II) summaries
    experiments [names...]     regenerate paper tables/figures (default all)
    evaluate DATASET           evaluate one dataset end to end vs the GPU
    thermal                    tier-count thermal feasibility study
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ReGraphX, ThermalModel, compare_with_gpu, tier_powers_from_report
from repro.experiments.common import DEFAULT_SCALES
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.experiments.runner import run as run_experiments
from repro.experiments.tables import table1_parameters, table2_datasets
from repro.graph.datasets import dataset_names
from repro.utils.units import format_seconds


def cmd_info(_: argparse.Namespace) -> None:
    print(table1_parameters().render())
    print()
    print(table2_datasets().render())


def cmd_experiments(args: argparse.Namespace) -> None:
    names = args.names or None
    for _, text in run_experiments(names, seed=args.seed).items():
        print()
        print(text)


def cmd_evaluate(args: argparse.Namespace) -> None:
    accelerator = ReGraphX()
    scale = args.scale or DEFAULT_SCALES[args.dataset]
    print(f"building {args.dataset} workload at scale {scale} ...")
    workload = accelerator.build_workload(args.dataset, scale=scale, seed=args.seed)
    report = accelerator.evaluate(workload, multicast=not args.unicast)
    comparison = compare_with_gpu(report)
    print(f"worst-stage computation:   {format_seconds(report.worst_compute)}")
    print(f"worst-stage communication: {format_seconds(report.worst_communication)}")
    print(f"epoch time:   {format_seconds(report.epoch_seconds)}")
    print(f"epoch energy: {report.epoch_energy:.2f} J")
    print(f"vs GPU: speedup {comparison.speedup:.2f}x, "
          f"energy {comparison.energy_ratio:.2f}x, "
          f"EDP {comparison.edp_improvement:.1f}x")


def cmd_thermal(args: argparse.Namespace) -> None:
    accelerator = ReGraphX()
    workload = accelerator.build_workload("reddit", scale=0.02, seed=args.seed)
    report = accelerator.evaluate(workload)
    powers = tier_powers_from_report(report)
    model = ThermalModel()
    profile = model.steady_state(powers)
    print("per-tier power (W):", [f"{p:.1f}" for p in powers])
    print("per-tier temp (C): ", [f"{t:.1f}" for t in profile.tier_celsius])
    print(f"peak {profile.peak_celsius:.1f} C on tier {profile.peak_tier} "
          f"({'feasible' if profile.feasible else 'OVER LIMIT'})")
    per_tier = sum(powers) / len(powers)
    print(f"max feasible tiers at {per_tier:.1f} W/tier: "
          f"{model.max_feasible_tiers(per_tier)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReGraphX reproduction toolkit"
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="architecture + dataset summaries")

    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument("names", nargs="*", choices=list(ALL_EXPERIMENTS) + [[]])

    ev = sub.add_parser("evaluate", help="full-system evaluation of one dataset")
    ev.add_argument("dataset", choices=dataset_names())
    ev.add_argument("--scale", type=float, default=None)
    ev.add_argument("--unicast", action="store_true", help="disable multicast")

    sub.add_parser("thermal", help="3D-stack thermal feasibility study")
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "experiments": cmd_experiments,
        "evaluate": cmd_evaluate,
        "thermal": cmd_thermal,
    }[args.command]
    handler(args)


if __name__ == "__main__":
    main()
