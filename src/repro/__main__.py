"""Command-line interface: ``python -m repro <command>``.

Commands:
    info                       print the architecture (Table I) and dataset
                               (Table II) summaries
    experiments [names...]     regenerate paper tables/figures (default all)
    evaluate DATASET           evaluate one dataset end to end vs the GPU
    thermal                    tier-count thermal feasibility study
    sweep --preset NAME        run a declarative scenario campaign (parallel
                               with --jobs, cached under .repro_cache/)
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.campaign.executor import run_campaign
from repro.campaign.presets import get_preset, preset_names
from repro.campaign.store import DEFAULT_ROOT, ResultStore
from repro.core import ReGraphX, ThermalModel, compare_with_gpu, tier_powers_from_report
from repro.experiments.common import DEFAULT_SCALES
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.experiments.runner import run as run_experiments
from repro.experiments.tables import table1_parameters, table2_datasets
from repro.graph.datasets import dataset_names
from repro.utils.units import format_seconds


def cmd_info(_: argparse.Namespace) -> None:
    print(table1_parameters().render())
    print()
    print(table2_datasets().render())


def cmd_experiments(args: argparse.Namespace) -> None:
    names = args.names or None
    try:
        results = run_experiments(names, seed=args.seed or 0, jobs=args.jobs)
    except ValueError as error:
        raise SystemExit(f"experiments: {error}")
    for _, text in results.items():
        print()
        print(text)


def cmd_sweep(args: argparse.Namespace) -> None:
    if args.list_presets:
        for name in preset_names():
            spec = get_preset(name)
            print(f"{spec.summary()}")
            if spec.description:
                print(f"    {spec.description}")
        return
    if not args.preset:
        raise SystemExit("sweep: --preset NAME required (see --list-presets)")
    spec = get_preset(args.preset)
    if args.seed is not None:
        from dataclasses import replace

        spec = replace(spec, base=replace(spec.base, seed=args.seed))
    store = None if args.no_cache else ResultStore(args.cache)
    print(f"campaign {spec.summary()}  (jobs={args.jobs})")
    result = run_campaign(spec, jobs=args.jobs, store=store, progress=print)
    out = Path(args.out)
    json_path = result.to_json(out / f"{spec.name}.json")
    csv_path = result.to_csv(out / f"{spec.name}.csv")
    print()
    print(result.table().render())
    front = result.pareto()
    print()
    print(f"pareto front ({len(front)}/{len(result)}): "
          + ", ".join(r.label for r in front))
    print(f"wrote {json_path} and {csv_path}")


def cmd_evaluate(args: argparse.Namespace) -> None:
    accelerator = ReGraphX()
    scale = args.scale or DEFAULT_SCALES[args.dataset]
    print(f"building {args.dataset} workload at scale {scale} ...")
    workload = accelerator.build_workload(
        args.dataset, scale=scale, seed=args.seed or 0
    )
    report = accelerator.evaluate(workload, multicast=not args.unicast)
    comparison = compare_with_gpu(report)
    print(f"worst-stage computation:   {format_seconds(report.worst_compute)}")
    print(f"worst-stage communication: {format_seconds(report.worst_communication)}")
    print(f"epoch time:   {format_seconds(report.epoch_seconds)}")
    print(f"epoch energy: {report.epoch_energy:.2f} J")
    print(f"vs GPU: speedup {comparison.speedup:.2f}x, "
          f"energy {comparison.energy_ratio:.2f}x, "
          f"EDP {comparison.edp_improvement:.1f}x")


def cmd_thermal(args: argparse.Namespace) -> None:
    accelerator = ReGraphX()
    workload = accelerator.build_workload("reddit", scale=0.02, seed=args.seed or 0)
    report = accelerator.evaluate(workload)
    powers = tier_powers_from_report(report)
    model = ThermalModel()
    profile = model.steady_state(powers)
    print("per-tier power (W):", [f"{p:.1f}" for p in powers])
    print("per-tier temp (C): ", [f"{t:.1f}" for t in profile.tier_celsius])
    print(f"peak {profile.peak_celsius:.1f} C on tier {profile.peak_tier} "
          f"({'feasible' if profile.feasible else 'OVER LIMIT'})")
    per_tier = sum(powers) / len(powers)
    print(f"max feasible tiers at {per_tier:.1f} W/tier: "
          f"{model.max_feasible_tiers(per_tier)}")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReGraphX reproduction toolkit"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (default 0; for sweep, overrides the preset's base seed)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="architecture + dataset summaries")

    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument(
        "names", nargs="*", metavar="NAME",
        help=f"experiments to run (default all): {', '.join(ALL_EXPERIMENTS)}",
    )
    exp.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes (default 1)"
    )

    ev = sub.add_parser("evaluate", help="full-system evaluation of one dataset")
    ev.add_argument("dataset", choices=dataset_names())
    ev.add_argument("--scale", type=float, default=None)
    ev.add_argument("--unicast", action="store_true", help="disable multicast")

    sub.add_parser("thermal", help="3D-stack thermal feasibility study")

    sweep = sub.add_parser(
        "sweep", help="run a declarative scenario campaign (cached, parallel)"
    )
    sweep.add_argument("--preset", choices=preset_names(), default=None)
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes (default 1)"
    )
    sweep.add_argument(
        "--out", default="results", help="artifact directory (default results/)"
    )
    sweep.add_argument(
        "--cache", default=DEFAULT_ROOT,
        help=f"result store root (default {DEFAULT_ROOT}/)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="re-evaluate everything; do not read or write the store",
    )
    sweep.add_argument(
        "--list-presets", action="store_true", help="list presets and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "experiments": cmd_experiments,
        "evaluate": cmd_evaluate,
        "thermal": cmd_thermal,
        "sweep": cmd_sweep,
    }[args.command]
    handler(args)


if __name__ == "__main__":
    main()
