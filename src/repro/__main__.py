"""Command-line interface: ``python -m repro <command>``.

Commands::

    info                     print the architecture (Table I) and dataset
                             (Table II) summaries
    experiments [names...]   regenerate paper tables/figures (default all)
    evaluate DATASET         evaluate one dataset end to end vs the GPU
    thermal                  tier-count thermal feasibility study
    sweep --preset NAME      run a declarative scenario campaign (parallel
                             with --jobs, cached under .repro_cache/)
    serve                    simulate multi-tenant inference serving:
                             single point with per-tenant SLO analytics,
                             --campaign for a preset cross-product,
                             --plan-capacity for the minimum static fleet,
                             --autoscale/--admission to close the loop,
                             --trace-file to replay a recorded stream,
                             --trace-out/--metrics-out/--trace-sample to
                             export request traces and metrics as JSONL
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.campaign.executor import run_campaign
from repro.campaign.presets import get_preset, preset_names
from repro.campaign.store import DEFAULT_ROOT, ResultStore
from repro.core import (
    ReGraphX,
    ThermalModel,
    ThermalSpec,
    compare_with_gpu,
    tier_powers_from_report,
)
from repro.experiments.common import DEFAULT_SCALES
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.experiments.runner import run as run_experiments
from repro.experiments.tables import table1_parameters, table2_datasets
from repro.graph.datasets import dataset_names
from repro.utils.units import format_seconds


def cmd_info(_: argparse.Namespace) -> None:
    print(table1_parameters().render())
    print()
    print(table2_datasets().render())


def cmd_experiments(args: argparse.Namespace) -> None:
    names = args.names or None
    try:
        results = run_experiments(names, seed=args.seed or 0, jobs=args.jobs)
    except ValueError as error:
        raise SystemExit(f"experiments: {error}")
    for _, text in results.items():
        print()
        print(text)


def cmd_sweep(args: argparse.Namespace) -> None:
    if args.list_presets:
        for name in preset_names():
            spec = get_preset(name)
            print(f"{spec.summary()}")
            if spec.description:
                print(f"    {spec.description}")
        return
    if args.prune is not None:
        store = ResultStore(args.cache)
        before = store.size_report()
        removed = store.prune(args.prune)
        after = store.size_report()
        print(
            f"pruned {removed} of {before['entries']} records "
            f"({before['total_bytes']} -> {after['total_bytes']} bytes) "
            f"under {store.root}/"
        )
        return
    if not args.preset:
        raise SystemExit("sweep: --preset NAME required (see --list-presets)")
    spec = get_preset(args.preset)
    if args.seed is not None:
        spec = replace(spec, base=replace(spec.base, seed=args.seed))
    store = None if args.no_cache else ResultStore(args.cache)
    print(f"campaign {spec.summary()}  (jobs={args.jobs})")
    if args.progress:
        # Structured streaming: start events, hit/computed split, ETA.
        result = run_campaign(
            spec,
            jobs=args.jobs,
            store=store,
            on_event=lambda event: print(event.render()),
        )
    else:
        result = run_campaign(spec, jobs=args.jobs, store=store, progress=print)
    out = Path(args.out)
    json_path = result.to_json(out / f"{spec.name}.json")
    csv_path = result.to_csv(out / f"{spec.name}.csv")
    print()
    print(result.table().render())
    front = result.pareto()
    print()
    print(f"pareto front ({len(front)}/{len(result)}): "
          + ", ".join(r.label for r in front))
    print(f"wrote {json_path} and {csv_path}")
    print(
        f"{result.misses} computed, {result.hits} cached, "
        f"{result.elapsed_seconds:.1f}s wall"
    )


def cmd_evaluate(args: argparse.Namespace) -> None:
    accelerator = ReGraphX()
    scale = args.scale or DEFAULT_SCALES[args.dataset]
    print(f"building {args.dataset} workload at scale {scale} ...")
    workload = accelerator.build_workload(
        args.dataset, scale=scale, seed=args.seed or 0
    )
    report = accelerator.evaluate(workload, multicast=not args.unicast)
    comparison = compare_with_gpu(report)
    print(f"worst-stage computation:   {format_seconds(report.worst_compute)}")
    print(f"worst-stage communication: {format_seconds(report.worst_communication)}")
    print(f"epoch time:   {format_seconds(report.epoch_seconds)}")
    print(f"epoch energy: {report.epoch_energy:.2f} J")
    print(f"vs GPU: speedup {comparison.speedup:.2f}x, "
          f"energy {comparison.energy_ratio:.2f}x, "
          f"EDP {comparison.edp_improvement:.1f}x")


def cmd_thermal(args: argparse.Namespace) -> None:
    if args.tiers is None:
        accelerator = ReGraphX()
    else:
        # Materialize the tier override through the campaign convention
        # (V tier re-centered, static power rescaled with tile count).
        from repro.campaign.spec import Scenario

        accelerator = ReGraphX(Scenario(tiers=args.tiers).to_config())
    workload = accelerator.build_workload("reddit", scale=0.02, seed=args.seed or 0)
    report = accelerator.evaluate(workload)
    powers = tier_powers_from_report(report)
    defaults = ThermalSpec()
    spec = ThermalSpec(
        ambient_celsius=(
            args.ambient if args.ambient is not None else defaults.ambient_celsius
        ),
        layer_resistance=(
            args.layer_resistance
            if args.layer_resistance is not None
            else defaults.layer_resistance
        ),
    )
    model = ThermalModel(spec)
    profile = model.steady_state(powers)
    print("per-tier power (W):", [f"{p:.1f}" for p in powers])
    print("per-tier temp (C): ", [f"{t:.1f}" for t in profile.tier_celsius])
    print(f"peak {profile.peak_celsius:.1f} C on tier {profile.peak_tier} "
          f"({'feasible' if profile.feasible else 'OVER LIMIT'})")
    per_tier = sum(powers) / len(powers)
    print(f"max feasible tiers at {per_tier:.1f} W/tier: "
          f"{model.max_feasible_tiers(per_tier)}")


def cmd_serve(args: argparse.Namespace) -> None:
    from repro.serve import (
        ServingRecord,
        ServingScenario,
        get_serving_preset,
        run_serving_campaign,
        scenario_with,
        serving_key,
        serving_preset_names,
        simulate_serving_scenario,
    )

    if args.list_presets:
        for name in serving_preset_names():
            spec = get_serving_preset(name)
            print(f"{spec.summary()}")
            if spec.description:
                print(f"    {spec.description}")
        return

    overrides = {}
    for field_name, arg_name in (
        ("dataset", "dataset"),
        ("scale", "scale"),
        ("arrival", "arrival"),
        ("qps", "qps"),
        ("duration_seconds", "duration"),
        ("num_tenants", "tenants"),
        ("max_batch", "batch"),
        ("policy", "policy"),
        ("instances", "instances"),
        ("seed", "seed"),
        ("autoscaler", "autoscale"),
        ("autoscale_target", "autoscale_target"),
        ("min_instances", "min_instances"),
        ("admission", "admission"),
        ("queue_budget", "queue_budget"),
        ("tenant_quota_qps", "quota_qps"),
        ("max_instances", "max_instances"),
        ("fleet", "fleet"),
        ("routing", "routing"),
        ("faults", "faults"),
        ("retry", "retry"),
        ("retry_max_attempts", "retry_attempts"),
    ):
        value = getattr(args, arg_name)
        if value is not None:
            overrides[field_name] = value
    if args.max_wait_ms is not None:
        overrides["max_wait_seconds"] = args.max_wait_ms / 1e3
    if args.slo_ms is not None:
        overrides["slo_seconds"] = args.slo_ms / 1e3
    if args.warmup_ms is not None:
        overrides["warmup_seconds"] = args.warmup_ms / 1e3
    if args.tarpit_ms is not None:
        overrides["tarpit_seconds"] = args.tarpit_ms / 1e3
    if args.hedge_ms is not None:
        overrides["hedge_seconds"] = args.hedge_ms / 1e3
    if args.autoscale is not None and args.autoscale != "none" and not args.preset:
        # Enabling the autoscaler from scratch starts the fleet at the
        # floor (that is the point of closing the loop); a preset's own
        # hand-tuned band and initial fleet are left alone.
        overrides.setdefault("instances", overrides.get("min_instances", 1))

    if args.trace_sample is not None and not args.trace_out:
        raise SystemExit("serve: --trace-sample needs --trace-out FILE")

    store = None if args.no_cache else ResultStore(args.cache)
    if args.campaign:
        if not args.preset:
            raise SystemExit("serve: --campaign needs --preset NAME")
        if args.plan_capacity:
            raise SystemExit(
                "serve: --plan-capacity is a single-point flag; drop --campaign"
            )
        if args.trace_file:
            raise SystemExit(
                "serve: --trace-file replays one stream; drop --campaign"
            )
        if args.trace_out or args.metrics_out:
            raise SystemExit(
                "serve: --trace-out/--metrics-out export one simulation; "
                "drop --campaign"
            )
        try:
            spec = get_serving_preset(args.preset)
            if overrides:
                spec = replace(spec, base=scenario_with(spec.base, **overrides))
        except ValueError as error:
            raise SystemExit(f"serve: {error}")
        print(f"serving campaign {spec.summary()}  (jobs={args.jobs})")
        result = run_serving_campaign(
            spec, jobs=args.jobs, store=store, progress=print
        )
        out = Path(args.out)
        json_path = result.to_json(out / f"{spec.name}.json")
        csv_path = result.to_csv(out / f"{spec.name}.csv")
        print()
        print(result.table().render())
        print(f"wrote {json_path} and {csv_path}")
        print(
            f"{result.misses} computed, {result.hits} cached, "
            f"{result.elapsed_seconds:.1f}s wall"
        )
        return

    trace = None
    if args.trace_file:
        if args.arrival is not None:
            raise SystemExit(
                "serve: --trace-file already fixes the arrivals; drop --arrival"
            )
        from repro.serve import load_trace

        trace_path = Path(args.trace_file)
        if not trace_path.is_file():
            raise SystemExit(f"serve: trace file not found: {trace_path}")
        try:
            trace = load_trace(trace_path)
        except (ValueError, KeyError, TypeError) as error:
            raise SystemExit(f"serve: cannot parse trace {trace_path}: {error}")
        overrides["qps"] = trace.rate_qps

    try:
        base = (
            get_serving_preset(args.preset).base if args.preset else ServingScenario()
        )
        scenario = scenario_with(base, **overrides) if overrides else base
    except ValueError as error:
        raise SystemExit(f"serve: {error}")
    extras = []
    if scenario.fleet:
        extras.append(f"fleet {scenario.fleet}, routing {scenario.routing}")
    if scenario.autoscaler != "none":
        extras.append(
            f"autoscale {scenario.autoscaler}@{scenario.autoscale_target:g} "
            f"in [{scenario.min_instances}, {scenario.max_instances}]"
        )
    if scenario.admission != "none":
        extras.append(
            f"admission {scenario.admission} (queue budget "
            f"{scenario.queue_budget}, quota {scenario.tenant_quota_qps:g} qps)"
        )
    if scenario.faults:
        extras.append(f"faults {scenario.faults}")
    if scenario.retry != "none" or scenario.hedge_seconds > 0:
        extras.append(
            f"retry {scenario.retry} (<= {scenario.retry_max_attempts} "
            f"attempts), hedge {scenario.hedge_seconds * 1e3:g}ms"
        )
    if trace is not None:
        extras.append(f"trace {args.trace_file} ({len(trace.requests)} requests)")
    print(f"serving scenario {scenario.display_label}: "
          f"{scenario.arrival} arrivals at {scenario.qps:g} qps for "
          f"{scenario.duration_seconds:g}s, {scenario.num_tenants} tenant(s), "
          f"batch<= {scenario.max_batch}, wait<= "
          f"{scenario.max_wait_seconds * 1e3:g}ms, policy {scenario.policy}, "
          f"{scenario.instances} instance(s)"
          + ("".join(f"\n  {line}" for line in extras)))
    recorder = None
    registry = None
    sampler = None
    if args.trace_out:
        from repro.obs import make_recorder

        try:
            recorder = make_recorder(
                args.trace_sample or "all", slo_seconds=scenario.slo_seconds
            )
        except ValueError as error:
            raise SystemExit(f"serve: {error}")
    if args.metrics_out:
        from repro.obs import MetricRegistry, Sampler

        registry = MetricRegistry()
        # Fixed 50-tick cadence over the admission window: the series
        # length is deterministic and independent of the request count.
        sampler = Sampler(interval_seconds=scenario.duration_seconds / 50.0)

    import time

    start = time.perf_counter()
    report = simulate_serving_scenario(
        scenario,
        arrivals=trace,
        recorder=recorder,
        registry=registry,
        sampler=sampler,
    )
    elapsed = time.perf_counter() - start
    print(report.render())
    if recorder is not None:
        trace_path = recorder.export_jsonl(args.trace_out)
        print(f"wrote {len(recorder.spans())} trace spans to {trace_path}")
    if registry is not None:
        from repro.obs import export_metrics_jsonl

        metrics_path = export_metrics_jsonl(args.metrics_out, registry, sampler)
        print(
            f"wrote {len(registry)} metrics + {len(sampler)} samples "
            f"to {metrics_path}"
        )
    # The single-point path always re-simulates (the detailed per-tenant
    # report is its whole point) but feeds the store for later campaigns;
    # an existing record is left untouched so prune()'s LRU order and the
    # record's original eval timing survive repeat runs.  Trace replays
    # never touch the store — the key describes the scenario, not the
    # injected stream.
    if store is not None and trace is None:
        key = serving_key(scenario)
        if key not in store:
            record = ServingRecord.from_report(scenario, report, key, elapsed)
            store.put(key, record.to_dict())

    if args.plan_capacity:
        from repro.serve import plan_capacity

        plan = plan_capacity(
            scenario, max_instances=args.max_instances or 32, store=store
        )
        print()
        print(plan.render())


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ReGraphX reproduction toolkit"
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (default 0; for sweep, overrides the preset's base seed)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="architecture + dataset summaries")

    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument(
        "names", nargs="*", metavar="NAME",
        help=f"experiments to run (default all): {', '.join(ALL_EXPERIMENTS)}",
    )
    exp.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes (default 1)"
    )

    ev = sub.add_parser("evaluate", help="full-system evaluation of one dataset")
    ev.add_argument("dataset", choices=dataset_names())
    ev.add_argument("--scale", type=float, default=None)
    ev.add_argument("--unicast", action="store_true", help="disable multicast")

    thermal = sub.add_parser("thermal", help="3D-stack thermal feasibility study")
    thermal.add_argument(
        "--tiers", type=int, default=None,
        help="stacked tier count (default: the paper's 3-tier stack)",
    )
    thermal.add_argument(
        "--ambient", type=float, default=None,
        help="ambient temperature in C (default: ThermalSpec default)",
    )
    thermal.add_argument(
        "--layer-resistance", type=float, default=None,
        help="per-layer vertical thermal resistance in K/W",
    )

    sweep = sub.add_parser(
        "sweep", help="run a declarative scenario campaign (cached, parallel)"
    )
    sweep.add_argument("--preset", choices=preset_names(), default=None)
    sweep.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes (default 1)"
    )
    sweep.add_argument(
        "--out", default="results", help="artifact directory (default results/)"
    )
    sweep.add_argument(
        "--cache", default=DEFAULT_ROOT,
        help=f"result store root (default {DEFAULT_ROOT}/)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="re-evaluate everything; do not read or write the store",
    )
    sweep.add_argument(
        "--list-presets", action="store_true", help="list presets and exit"
    )
    sweep.add_argument(
        "--prune", type=int, default=None, metavar="MAX",
        help="evict oldest cached records down to MAX entries and exit",
    )
    sweep.add_argument(
        "--progress", action="store_true",
        help="stream structured progress (start events, hit/computed "
        "split, ETA) instead of one line per finished scenario",
    )

    serve = sub.add_parser(
        "serve",
        help="multi-tenant inference-serving simulation (SLO analytics)",
    )
    serve.add_argument(
        "--preset", default=None,
        help="serving preset supplying the base scenario (see --list-presets)",
    )
    serve.add_argument(
        "--campaign", action="store_true",
        help="run the preset's full cross-product instead of a single point",
    )
    serve.add_argument("--qps", type=float, default=None, help="offered load")
    serve.add_argument(
        "--instances", type=_positive_int, default=None,
        help="replicated accelerator instances",
    )
    serve.add_argument(
        "--fleet", default=None, metavar="SPEC",
        help="heterogeneous fleet composition, e.g. small:2,large:1 "
        "(types: small/default/large; overrides --instances)",
    )
    serve.add_argument(
        "--routing", default=None,
        choices=("shared_queue", "size_affinity", "po2", "tenant_pin"),
        help="routing policy between admission and the per-type queues "
        "(default shared_queue)",
    )
    serve.add_argument(
        "--batch", type=_positive_int, default=None,
        help="scheduler max batch size",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=None,
        help="scheduler max-wait deadline (milliseconds)",
    )
    serve.add_argument(
        "--policy", choices=("fifo", "wfq"), default=None,
        help="batch composition policy",
    )
    serve.add_argument(
        "--arrival", choices=("poisson", "mmpp", "diurnal"), default=None,
        help="open-loop arrival model",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="admission window (seconds of simulated traffic)",
    )
    serve.add_argument(
        "--tenants", type=_positive_int, default=None,
        help="equal-weight tenants sharing the stream",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=None,
        help="per-request latency SLO (milliseconds)",
    )
    serve.add_argument("--dataset", choices=dataset_names(), default=None)
    serve.add_argument(
        "--scale", type=float, default=None,
        help="workload scale calibrating the service model",
    )
    serve.add_argument(
        "--plan-capacity", action="store_true",
        help="also binary-search the minimum fleet meeting the SLO",
    )
    serve.add_argument(
        "--max-instances", type=_positive_int, default=None,
        help="fleet ceiling: the autoscaler's clamp (scenario default 16) "
        "and the capacity-search upper bound (default 32)",
    )
    serve.add_argument(
        "--autoscale", choices=("none", "target-util", "queue-pid"),
        default=None,
        help="close the loop: grow/shrink the fleet mid-simulation",
    )
    serve.add_argument(
        "--autoscale-target", type=float, default=None,
        help="policy setpoint (busy fraction for target-util, queued "
        "requests per replica for queue-pid)",
    )
    serve.add_argument(
        "--min-instances", type=_positive_int, default=None,
        help="autoscaler floor (default 1)",
    )
    serve.add_argument(
        "--warmup-ms", type=float, default=None,
        help="provisioning delay before a scaled-out instance serves",
    )
    serve.add_argument(
        "--admission", choices=("none", "shed", "tarpit"), default=None,
        help="overload response in front of the scheduler",
    )
    serve.add_argument(
        "--queue-budget", type=int, default=None,
        help="queue depth at which admissions are refused (0 disables)",
    )
    serve.add_argument(
        "--quota-qps", type=float, default=None,
        help="per-tenant token-bucket admission rate (0 disables)",
    )
    serve.add_argument(
        "--tarpit-ms", type=float, default=None,
        help="retry delay per refusal in tarpit mode",
    )
    serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seeded fault injection: 'default' for the stock zoo or "
        "'mtbf=0.5,mttr=0.1,...' (crashes, slowdowns, zone outages)",
    )
    serve.add_argument(
        "--retry", choices=("none", "backoff", "deadline"), default=None,
        help="client retry policy for failed requests (default none)",
    )
    serve.add_argument(
        "--retry-attempts", type=_positive_int, default=None,
        help="total attempts per request before giving up (default 3)",
    )
    serve.add_argument(
        "--hedge-ms", type=float, default=None,
        help="hedged dispatch: duplicate a request to a second target "
        "after this delay; first copy wins (0 disables)",
    )
    serve.add_argument(
        "--trace-file", default=None, metavar="CSV",
        help="replay a recorded request stream instead of a generated "
        "arrival model (single point only)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="JSONL",
        help="record per-request lifecycle spans and write them as JSON "
        "Lines (single point only)",
    )
    serve.add_argument(
        "--trace-sample", default=None, metavar="MODE",
        help="trace sampling mode: all (default), head:N, 1-in-K, or slo "
        "(SLO violators and sheds only); needs --trace-out",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="JSONL",
        help="export run counters/gauges/latency sketches plus a "
        "fleet-state time series as JSON Lines (single point only)",
    )
    serve.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for --campaign (default 1)",
    )
    serve.add_argument(
        "--out", default="results", help="artifact directory (default results/)"
    )
    serve.add_argument(
        "--cache", default=DEFAULT_ROOT,
        help=f"result store root (default {DEFAULT_ROOT}/)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="do not touch the result store (single points always "
        "re-simulate; this also skips recording them)",
    )
    serve.add_argument(
        "--list-presets", action="store_true",
        help="list serving presets and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "experiments": cmd_experiments,
        "evaluate": cmd_evaluate,
        "thermal": cmd_thermal,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
    }[args.command]
    try:
        handler(args)
    except BrokenPipeError:
        # Reader closed our stdout (`repro ... | head`); exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        sys.stderr.close()
        raise SystemExit(141)


if __name__ == "__main__":
    main()
