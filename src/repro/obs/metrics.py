"""Metrics core: a registry of counters/gauges/histograms + a time sampler.

The telemetry subsystem's data model, deliberately tiny and
simulation-native: metrics are driven by *simulated* time the engine
passes in, never a wall clock, so every export is a deterministic
function of the seeded scenario.

* :class:`Counter` / :class:`Gauge` — monotonically accumulated and
  last-write-wins scalars.
* :class:`Histogram` — a named distribution backed by a quantile sketch
  (:mod:`repro.obs.sketch`): ``backend="p2"`` keeps it O(1) memory,
  ``backend="exact"`` keeps it an oracle.
* :class:`MetricRegistry` — get-or-create access by name; the engine
  owns one per run and fills it as it simulates.
* :class:`Sampler` — fixed simulated-time-interval snapshots of fleet
  state (ready/warming/busy/retiring, queue depth, admission tallies,
  utilization), sample-and-hold: each tick records the state that was
  current when simulated time crossed it.

:func:`export_metrics_jsonl` writes samples and final metric values as
JSON Lines — one self-describing object per line (``kind`` is
``sample`` / ``counter`` / ``gauge`` / ``histogram``), the format the
CLI's ``repro serve --metrics-out`` emits and CI validates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.sketch import DEFAULT_QUANTILES, make_sketch


@dataclass
class Counter:
    """A monotonically increasing tally (events, requests, sheds)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins scalar (queue depth, fleet size, peak marks)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


class Histogram:
    """A named distribution, answered through its sketch backend."""

    def __init__(
        self,
        name: str,
        backend: str = "p2",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        sketch: Any | None = None,
    ) -> None:
        self.name = name
        self.sketch = sketch if sketch is not None else make_sketch(
            backend, quantiles
        )

    def observe(self, value: float) -> None:
        """Absorb one observation."""
        self.sketch.add(value)

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self.sketch.count

    def summary(self):
        """The sketch's :class:`~repro.noc.stats.LatencySummary`."""
        return self.sketch.summary()


class MetricRegistry:
    """Get-or-create registry of named metrics, one per engine run.

    Names are unique across metric kinds — asking for a counter named
    like an existing gauge is a bug and raises.  Iteration yields metrics
    in insertion order, so exports are deterministic.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            return None
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        metric = self._get(name, Counter)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        metric = self._get(name, Gauge)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        backend: str = "p2",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        metric = self._get(name, Histogram)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, backend, quantiles)
        return metric

    def attach_histogram(self, name: str, sketch: Any) -> Histogram:
        """Register an externally-owned sketch under ``name``.

        The engine builds its latency sketches on the hot path and only
        hands them to the registry at report time; attaching avoids a
        copy and keeps the registry a pure naming layer.
        """
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        metric = self._metrics[name] = Histogram(name, sketch=sketch)
        return metric

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> list[dict[str, Any]]:
        """All metrics as self-describing dicts (what the export writes)."""
        rows: list[dict[str, Any]] = []
        for metric in self:
            if isinstance(metric, Counter):
                rows.append(
                    {"kind": "counter", "name": metric.name, "value": metric.value}
                )
            elif isinstance(metric, Gauge):
                rows.append(
                    {"kind": "gauge", "name": metric.name, "value": metric.value}
                )
            else:
                rows.append(
                    {
                        "kind": "histogram",
                        "name": metric.name,
                        "backend": getattr(metric.sketch, "backend", "exact"),
                        **metric.summary().as_dict(),
                    }
                )
        return rows


class Sampler:
    """Fixed-interval time series of fleet state, sample-and-hold.

    The engine is event-driven, so state only changes at event times; a
    faithful fixed-cadence series therefore records, at each tick, the
    state that was in force when simulated time crossed that tick.  The
    engine guards the hot path with one comparison (``now >=
    sampler.next_time``) and calls :meth:`record` only when a tick is
    actually due; :meth:`record` then back-fills every elapsed tick with
    the held state.

    Memory is O(ticks) = O(horizon / interval), independent of request
    count.
    """

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"sample interval must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds
        self.rows: list[dict[str, Any]] = []
        self._next = 0.0

    @property
    def next_time(self) -> float:
        """The next tick due — the engine's one-comparison hot-path guard."""
        return self._next

    def record(self, now: float, state: Mapping[str, Any]) -> None:
        """Fill every tick in ``(last recorded, now]`` with ``state``.

        ``state`` must be the fleet state *before* the event at ``now``
        applies — it is what was current while time advanced to here.
        """
        while self._next <= now:
            self.rows.append({"time": round(self._next, 9), **state})
            self._next += self.interval_seconds

    def __len__(self) -> int:
        return len(self.rows)


def export_metrics_jsonl(
    path: str | Path,
    registry: MetricRegistry,
    sampler: Sampler | None = None,
) -> Path:
    """Write samples then final metrics as JSON Lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        if sampler is not None:
            for row in sampler.rows:
                handle.write(
                    json.dumps({"kind": "sample", **row}, sort_keys=True) + "\n"
                )
        for row in registry.snapshot():
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path
