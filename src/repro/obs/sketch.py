"""Streaming quantile sketches: constant-memory latency distributions.

The serving engine's latency accounting historically kept one Python
float per completed request, which is O(requests) memory — fine for a
two-second simulation, fatal for the million-request traces the serving
roadmap targets.  This module provides the drop-in alternative: the
P² (*piecewise-parabolic*, Jain & Chlamtac 1985) streaming quantile
estimator, which maintains five markers per tracked quantile and updates
them in O(1) per observation, so a whole latency distribution summary
costs a fixed few hundred bytes no matter how many samples stream
through.

Two interchangeable backends, same idiom as
:class:`~repro.noc.simulator.FlitSimulator`'s ``backend=`` switch:

* ``"p2"`` — :class:`P2Sketch`, the constant-memory estimator (one
  :class:`P2Quantile` per tracked percentile plus exact count / mean /
  min / max, which are trivially streamable).
* ``"exact"`` — :class:`ExactSketch`, which stores every value and
  answers through :func:`repro.noc.stats.percentile`.  It is the
  differential oracle the P² backend is tested against, and the default
  serving backend so existing reports stay bit-identical.

Both satisfy the small informal ``add / count / mean / max / quantile /
summary`` protocol; :func:`repro.noc.stats.summarize_latencies` accepts
either (it routes a sketch through its own :meth:`~P2Sketch.summary`).
"""

from __future__ import annotations

from typing import Sequence

from repro.noc.stats import LatencySummary, percentile

#: Registered sketch backends (the ``metrics_backend`` scenario knob).
SKETCH_BACKENDS = ("exact", "p2")

#: Percentiles a default sketch tracks — exactly the ones
#: :class:`~repro.noc.stats.LatencySummary` reports.
DEFAULT_QUANTILES = (50.0, 95.0, 99.0)


class P2Quantile:
    """One streaming quantile via the P² algorithm (five markers, O(1)).

    Tracks the ``q``-th percentile (``0 < q < 100``) of a stream without
    storing it: five marker heights approximate the quantile curve, and
    each observation nudges the markers toward their desired positions
    with a piecewise-parabolic (fallback: linear) interpolation step.

    Until five observations have arrived the estimator answers exactly
    from its startup buffer, so small streams lose nothing.
    """

    __slots__ = ("q", "_count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0 < q < 100:
            raise ValueError(f"tracked quantile must be in (0, 100), got {q}")
        self.q = q
        self._count = 0
        # Until the 5-observation startup completes, _heights doubles as
        # the (sorted) sample buffer.
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        p = q / 100.0
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    def add(self, value: float) -> None:
        """Absorb one observation in O(1)."""
        value = float(value)
        self._count += 1
        h = self._heights
        if self._count <= 5:
            # Startup: collect and keep sorted; the 5th arrival seeds the
            # markers with the five order statistics.
            lo, hi = 0, len(h)
            while lo < hi:
                mid = (lo + hi) // 2
                if h[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            h.insert(lo, value)
            return

        n = self._positions
        # Locate the cell, stretching the extreme markers if needed.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and h[k + 1] <= value:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        d = self._desired
        r = self._rates
        for i in range(1, 5):
            d[i] += r[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = h[i] + sign / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + sign)
                    * (h[i + 1] - h[i])
                    / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - sign)
                    * (h[i] - h[i - 1])
                    / (n[i] - n[i - 1])
                )
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabola left the bracket: fall back to linear
                    step = int(sign)
                    h[i] += sign * (h[i + step] - h[i]) / (n[i + step] - n[i])
                n[i] += sign

    @property
    def value(self) -> float:
        """Current quantile estimate (exact while the buffer is small)."""
        if self._count == 0:
            return 0.0
        if self._count <= 5:
            return percentile(self._heights, self.q)
        return self._heights[2]


class P2Sketch:
    """Constant-memory distribution summary: P² markers per percentile.

    Attributes:
        quantiles: the tracked percentiles (each owns five P² markers).
            :meth:`quantile` answers only these (plus 0 and 100, which
            stream exactly); :meth:`summary` needs 50/95/99 tracked.
    """

    backend = "p2"

    __slots__ = ("quantiles", "_estimators", "_count", "_sum", "_min", "_max")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("need at least one tracked quantile")
        self.quantiles = tuple(float(q) for q in quantiles)
        if len(set(self.quantiles)) != len(self.quantiles):
            raise ValueError(f"duplicate tracked quantiles in {quantiles}")
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Streaming mean (exact)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (exact; 0 for an empty sketch)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (exact; 0 for an empty sketch)."""
        return self._max

    @property
    def state_size(self) -> int:
        """Stored floats — constant in the stream length (the whole point)."""
        # 5 heights + 5 positions + 5 desired positions per estimator,
        # plus the four exact accumulators.
        return 15 * len(self._estimators) + 4

    def add(self, value: float) -> None:
        """Absorb one observation into every tracked estimator, O(1)."""
        value = float(value)
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value
        for estimator in self._estimators.values():
            estimator.add(value)

    def quantile(self, q: float) -> float:
        """Estimate of the ``q``-th percentile (must be tracked, 0, or 100)."""
        if q == 0:
            return self._min
        if q == 100:
            return self._max
        estimator = self._estimators.get(float(q))
        if estimator is None:
            raise ValueError(
                f"percentile {q} is not tracked by this sketch "
                f"(tracked: {self.quantiles}); construct it with "
                f"quantiles=(..., {q})"
            )
        return estimator.value

    def summary(self) -> LatencySummary:
        """The standard p50/p95/p99 summary, from the streaming state."""
        if self._count == 0:
            return LatencySummary(
                count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0
            )
        return LatencySummary(
            count=self._count,
            mean=self.mean,
            p50=self.quantile(50.0),
            p95=self.quantile(95.0),
            p99=self.quantile(99.0),
            max=self._max,
        )


class ExactSketch:
    """Store-everything oracle with the same protocol as :class:`P2Sketch`.

    Memory is O(observations); answers are exact (numpy-linear
    interpolation via :func:`repro.noc.stats.percentile`).  This is both
    the differential baseline the P² backend is benchmarked against and
    the default serving backend, keeping pre-telemetry reports
    bit-identical.
    """

    backend = "exact"

    __slots__ = ("quantiles", "_values")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.quantiles = tuple(float(q) for q in quantiles)
        self._values: list[float] = []

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Mean of the stored population."""
        return sum(self._values) / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0 for an empty sketch)."""
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0 for an empty sketch)."""
        return max(self._values) if self._values else 0.0

    @property
    def state_size(self) -> int:
        """Stored floats — grows with the stream (what P² avoids)."""
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """The raw population (the oracle's whole reason to exist)."""
        return list(self._values)

    def add(self, value: float) -> None:
        """Store one observation."""
        self._values.append(float(value))

    def quantile(self, q: float) -> float:
        """Exact ``q``-th percentile of the stored population."""
        if not self._values:
            return 0.0
        return percentile(self._values, q)

    def summary(self) -> LatencySummary:
        """Exact summary, identical to ``summarize_latencies(values)``."""
        from repro.noc.stats import summarize_latencies

        return summarize_latencies(self._values)


def make_sketch(
    backend: str = "exact", quantiles: Sequence[float] = DEFAULT_QUANTILES
):
    """Instantiate a registered sketch backend by name.

    ``"exact"`` answers exactly in O(n) memory; ``"p2"`` answers within a
    small relative error in O(1) memory.  Both expose ``add`` /
    ``count`` / ``mean`` / ``max`` / ``quantile`` / ``summary``.
    """
    if backend == "exact":
        return ExactSketch(quantiles)
    if backend == "p2":
        return P2Sketch(quantiles)
    raise ValueError(
        f"unknown sketch backend {backend!r}; choose from {SKETCH_BACKENDS}"
    )
