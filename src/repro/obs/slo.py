"""SLO burn-rate analytics: how fast the error budget is being spent.

An SLO ("p-request latency under X") comes with an *error budget*: the
fraction of requests allowed to violate it (the serving experiments use
1%, :data:`repro.experiments.fig10_autoscale.DEFAULT_MAX_VIOLATION_RATE`).
A single end-of-run violation rate says whether the budget held, but not
*when* it was spent — a 0.9% rate can mean a healthy steady state or a
ten-second outage that nearly torched the budget.  Burn rate is the
standard SRE answer: in each time window,

``burn = (violations / completed) / budget``

so ``1.0x`` spends the budget exactly at the sustainable rate, ``10x``
exhausts a run's budget in a tenth of the run.

:class:`BurnRateTracker` accumulates windowed counts online — O(windows)
memory, one dict update per completion, so it stays on even for
million-request streams — and :meth:`BurnRateTracker.report` freezes the
result into a :class:`SloBurnReport`: the per-window burn series, the
peak window, the instant the budget ran out (if it did), a
time-to-exhaustion extrapolation, and per-tenant violation attribution.
:meth:`SloBurnReport.render` is what ``ServingReport.render()`` appends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BurnWindow:
    """One fixed-width window of the burn-rate series."""

    start: float
    completed: int
    violations: int
    burn_rate: float


@dataclass(frozen=True)
class SloBurnReport:
    """Frozen burn-rate analytics for one serving run.

    Attributes:
        slo_seconds: the per-request latency target.
        budget: the violation-rate budget (e.g. ``0.01`` = 1%).
        window_seconds: width of each burn window.
        windows: the contiguous burn series from ``t=0``.
        completed / violations: run totals.
        overall_burn_rate: run-average burn (``1.0`` = budget exactly
            spent; above that the run blew its budget).
        peak_burn_rate / peak_window_start: the worst window.
        exhausted_at: simulated time the cumulative violations crossed
            the whole run's budget (``None`` when the budget held).
        time_to_exhaustion: at the final window's violation rate, how
            much longer the remaining budget would last (``None`` when
            already exhausted or nothing is currently burning).
        tenant_violations: violation counts per tenant (attribution).
    """

    slo_seconds: float
    budget: float
    window_seconds: float
    windows: tuple[BurnWindow, ...]
    completed: int
    violations: int
    overall_burn_rate: float
    peak_burn_rate: float
    peak_window_start: float
    exhausted_at: float | None
    time_to_exhaustion: float | None
    tenant_violations: dict[str, int]

    def render(self) -> list[str]:
        """The burn section ``ServingReport.render()`` appends."""
        head = (
            f"SLO burn (budget {self.budget:.2%}, window "
            f"{self.window_seconds * 1e3:g} ms): overall "
            f"{self.overall_burn_rate:.2f}x, peak {self.peak_burn_rate:.2f}x "
            f"@ t={self.peak_window_start:.3f}s"
        )
        if self.exhausted_at is not None:
            head += f", budget exhausted @ t={self.exhausted_at:.3f}s"
        elif self.time_to_exhaustion is not None:
            head += f", exhaustion in {self.time_to_exhaustion:.3f}s at current burn"
        lines = [head]
        series = " ".join(f"{w.burn_rate:.1f}" for w in self.windows)
        lines.append(f"  burn/window [x budget]: {series}")
        if self.violations and self.tenant_violations:
            attribution = ", ".join(
                f"{tenant} {count / self.violations:.0%} ({count})"
                for tenant, count in sorted(
                    self.tenant_violations.items(),
                    key=lambda item: (-item[1], item[0]),
                )
            )
            lines.append(f"  violations by tenant: {attribution}")
        return lines


class BurnRateTracker:
    """Online windowed violation accounting (O(windows) memory).

    The engine calls :meth:`observe` once per completed request;
    :meth:`report` is called once, after the run.
    """

    def __init__(
        self, slo_seconds: float, budget: float, window_seconds: float
    ) -> None:
        if slo_seconds <= 0:
            raise ValueError(f"SLO must be positive, got {slo_seconds}")
        if not 0 < budget < 1:
            raise ValueError(f"budget must be a rate in (0, 1), got {budget}")
        if window_seconds <= 0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        self.slo_seconds = slo_seconds
        self.budget = budget
        self.window_seconds = window_seconds
        self._windows: dict[int, list[int]] = {}  # index -> [completed, violations]
        self._tenant_violations: dict[str, int] = {}
        self.completed = 0
        self.violations = 0

    def observe(self, now: float, tenant: str, latency: float) -> bool:
        """Account one completion; returns whether it violated the SLO."""
        violated = latency > self.slo_seconds
        index = int(now / self.window_seconds)
        cell = self._windows.get(index)
        if cell is None:
            cell = self._windows[index] = [0, 0]
        cell[0] += 1
        self.completed += 1
        if violated:
            cell[1] += 1
            self.violations += 1
            self._tenant_violations[tenant] = (
                self._tenant_violations.get(tenant, 0) + 1
            )
        return violated

    def violations_for(self, tenant: str) -> int:
        """Violations attributed to ``tenant`` so far."""
        return self._tenant_violations.get(tenant, 0)

    def report(self) -> SloBurnReport | None:
        """Freeze the series (``None`` when nothing completed)."""
        if self.completed == 0:
            return None
        w = self.window_seconds
        last_index = max(self._windows)
        windows: list[BurnWindow] = []
        for index in range(last_index + 1):
            completed, violations = self._windows.get(index, (0, 0))
            burn = (
                (violations / completed) / self.budget if completed else 0.0
            )
            windows.append(
                BurnWindow(
                    start=index * w,
                    completed=completed,
                    violations=violations,
                    burn_rate=burn,
                )
            )
        peak = max(windows, key=lambda win: win.burn_rate)
        overall = (self.violations / self.completed) / self.budget

        # Budget exhaustion: cumulative violations against the *whole
        # run's* budget (budget rate x total completions), interpolated
        # inside the window that crossed the line.
        allowed = self.budget * self.completed
        exhausted_at: float | None = None
        cumulative = 0.0
        for win in windows:
            if cumulative + win.violations > allowed:
                overshoot_fraction = (allowed - cumulative) / win.violations
                exhausted_at = win.start + overshoot_fraction * w
                break
            cumulative += win.violations

        # Extrapolation: at the last window's violation rate, how long
        # until the remaining budget is gone?
        time_to_exhaustion: float | None = None
        if exhausted_at is None and windows[-1].violations > 0:
            rate = windows[-1].violations / w
            time_to_exhaustion = (allowed - self.violations) / rate

        return SloBurnReport(
            slo_seconds=self.slo_seconds,
            budget=self.budget,
            window_seconds=w,
            windows=tuple(windows),
            completed=self.completed,
            violations=self.violations,
            overall_burn_rate=overall,
            peak_burn_rate=peak.burn_rate,
            peak_window_start=peak.start,
            exhausted_at=exhausted_at,
            time_to_exhaustion=time_to_exhaustion,
            tenant_violations=dict(self._tenant_violations),
        )
