"""Telemetry subsystem: tracing, streaming metrics, and SLO analytics.

The observability layer for the serving stack (and anything else that
wants it).  Everything here is simulation-native — driven by simulated
time the caller passes in, deterministic from the seeded scenario, and
designed for the million-request scale the serving roadmap targets:

* :mod:`repro.obs.sketch` — P² streaming quantile sketches: latency
  percentiles in O(1) memory, with a store-everything exact oracle
  behind the same ``backend=`` switch.
* :mod:`repro.obs.metrics` — the :class:`~repro.obs.metrics
  .MetricRegistry` of counters, gauges, and sketch-backed histograms,
  plus the fixed-interval fleet-state :class:`~repro.obs.metrics
  .Sampler` and the JSONL metrics export.
* :mod:`repro.obs.trace` — per-request lifecycle spans recorded by a
  :class:`~repro.obs.trace.TraceRecorder` (zero-overhead
  :class:`~repro.obs.trace.NullRecorder` default; ``head:N`` /
  ``1-in-K`` / SLO-violators-only bounded sampling), exported as JSONL.
* :mod:`repro.obs.slo` — windowed SLO burn-rate analytics: how fast the
  error budget is being spent, when it ran out, and which tenant spent
  it.

The serving engine takes these as injected collaborators
(``ServingEngine(recorder=..., registry=..., sampler=...)``); the CLI
surfaces them as ``repro serve --trace-out / --metrics-out /
--trace-sample``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Sampler,
    export_metrics_jsonl,
)
from repro.obs.sketch import (
    DEFAULT_QUANTILES,
    SKETCH_BACKENDS,
    ExactSketch,
    P2Quantile,
    P2Sketch,
    make_sketch,
)
from repro.obs.slo import BurnRateTracker, BurnWindow, SloBurnReport
from repro.obs.trace import (
    FLEET_CRASH,
    FLEET_RECOVER,
    FLEET_RESCUE,
    FLEET_SCALE,
    FLEET_SLOWDOWN,
    FLEET_WARMED,
    FLEET_ZONE_OUTAGE,
    SPAN_ADMIT,
    SPAN_ARRIVE,
    SPAN_DEPART,
    SPAN_DISPATCH,
    SPAN_ENQUEUE,
    SPAN_FAIL,
    SPAN_HEDGE_CANCELLED,
    SPAN_HEDGE_FIRED,
    SPAN_RETRY,
    SPAN_SHED,
    SPAN_TARPIT,
    TERMINAL_SPANS,
    TRACE_SAMPLE_MODES,
    MemoryTraceRecorder,
    NullRecorder,
    TraceRecorder,
    make_recorder,
)

__all__ = [
    "P2Quantile",
    "P2Sketch",
    "ExactSketch",
    "make_sketch",
    "SKETCH_BACKENDS",
    "DEFAULT_QUANTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Sampler",
    "export_metrics_jsonl",
    "TraceRecorder",
    "NullRecorder",
    "MemoryTraceRecorder",
    "make_recorder",
    "TRACE_SAMPLE_MODES",
    "TERMINAL_SPANS",
    "SPAN_ARRIVE",
    "SPAN_ADMIT",
    "SPAN_TARPIT",
    "SPAN_SHED",
    "SPAN_ENQUEUE",
    "SPAN_DISPATCH",
    "SPAN_DEPART",
    "SPAN_RETRY",
    "SPAN_FAIL",
    "SPAN_HEDGE_FIRED",
    "SPAN_HEDGE_CANCELLED",
    "FLEET_WARMED",
    "FLEET_SCALE",
    "FLEET_RESCUE",
    "FLEET_CRASH",
    "FLEET_RECOVER",
    "FLEET_SLOWDOWN",
    "FLEET_ZONE_OUTAGE",
    "BurnRateTracker",
    "BurnWindow",
    "SloBurnReport",
]
