"""Request tracing: per-request lifecycle spans with bounded-memory sampling.

A trace answers the question aggregate metrics cannot: *why did this
request miss its SLO?*  The serving engine emits one span per lifecycle
step —

``arrive`` → ``admit`` (verdict) → ``enqueue`` → ``dispatch`` (batch
formation + instance assignment) → ``depart`` (service complete), with
``tarpit`` retries, ``shed`` drops, and fleet-level ``warmed`` /
``scale`` / ``rescue`` events interleaved — all stamped with simulated
time, so a trace is a deterministic function of the seeded scenario.
Faulted runs add the reliability lifecycle: ``retry`` (a crashed
attempt re-enqueued), ``fail`` (a request out of attempts — terminal,
like ``shed``), the ``hedge_fired`` / ``hedge_cancelled`` pair, and
fleet-level ``crash`` / ``recover`` / ``slowdown`` / ``zone_outage``
events.

Recording is strictly opt-in.  The default :class:`NullRecorder`
advertises ``enabled = False`` and the engine resolves that to *no
recorder at all* before the event loop starts, so the instrumented hot
path is the uninstrumented hot path (asserted by
``benchmarks/test_bench_obs.py``).

A full trace of a million-request run is exactly the O(requests) memory
the sketch layer exists to avoid, so :class:`MemoryTraceRecorder`
supports bounded sampling modes (the CLI's ``--trace-sample``):

* ``all`` — every span (short runs, debugging).
* ``head:N`` — only the first ``N`` distinct requests.
* ``1-in-K`` — a deterministic 1/K systematic sample by request id.
* ``slo`` — SLO violators (and sheds) only: spans buffer per in-flight
  request and are discarded at a healthy depart, so memory is bounded by
  the number of requests in flight, not by the stream length.

Export is JSON Lines via :meth:`TraceRecorder.export_jsonl`, one span
object per line in emission (= simulated time) order.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.arrivals import Request

#: Per-request span kinds, in lifecycle order.
SPAN_ARRIVE = "arrive"
SPAN_ADMIT = "admit"
SPAN_TARPIT = "tarpit"
SPAN_SHED = "shed"
SPAN_ENQUEUE = "enqueue"
SPAN_DISPATCH = "dispatch"
SPAN_DEPART = "depart"
#: Reliability span kinds: a crashed attempt re-enqueued (``retry``), a
#: request out of attempts or past its deadline (``fail``, terminal),
#: and the hedged-dispatch pair — the duplicate copy entering a second
#: queue (``hedge_fired``) and the losing copy discarded after the
#: winner departed (``hedge_cancelled``).
SPAN_RETRY = "retry"
SPAN_FAIL = "fail"
SPAN_HEDGE_FIRED = "hedge_fired"
SPAN_HEDGE_CANCELLED = "hedge_cancelled"

#: Fleet-level span kinds (no request attached).
FLEET_WARMED = "warmed"
FLEET_SCALE = "scale"
FLEET_RESCUE = "rescue"
FLEET_CRASH = "crash"
FLEET_RECOVER = "recover"
FLEET_SLOWDOWN = "slowdown"
FLEET_ZONE_OUTAGE = "zone_outage"

#: Span kinds that close a request's lifecycle.
TERMINAL_SPANS = (SPAN_DEPART, SPAN_SHED, SPAN_FAIL)

_ONE_IN_K = re.compile(r"^1-in-(\d+)$")
_HEAD_N = re.compile(r"^head:(\d+)$")

#: Recorder sampling modes (the CLI ``--trace-sample`` choices; ``head``
#: and ``1-in`` carry a numeric parameter).
TRACE_SAMPLE_MODES = ("off", "all", "head:N", "1-in-K", "slo")


class TraceRecorder:
    """No-op base recorder: every hook is a ``pass``.

    The engine checks ``enabled`` once, before its event loop, and drops
    a disabled recorder entirely — subclasses that record set
    ``enabled = True``.
    """

    enabled = False

    def request_event(
        self, time: float, kind: str, request: "Request", **attrs: Any
    ) -> None:
        """Record one lifecycle span for ``request`` (no-op here)."""

    def fleet_event(self, time: float, kind: str, **attrs: Any) -> None:
        """Record one fleet-level span (no-op here)."""

    def finish(self) -> None:
        """Flush mode-specific buffers at end of run (no-op here)."""

    def spans(self) -> list[dict[str, Any]]:
        """All committed spans, in emission order."""
        return []

    def export_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`spans` as JSON Lines; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for span in self.spans():
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return path


class NullRecorder(TraceRecorder):
    """The zero-overhead default: records nothing, exports nothing."""


class MemoryTraceRecorder(TraceRecorder):
    """In-memory span recorder with the bounded sampling modes.

    Args:
        sample: ``"all"``, ``"head:N"``, ``"1-in-K"``, or ``"slo"``.
        slo_seconds: required by ``"slo"`` mode — the latency threshold
            that makes a departed request worth keeping.  (Shed requests
            are always kept in that mode: failing to be served at all is
            the strongest SLO violation there is.)
    """

    enabled = True

    def __init__(self, sample: str = "all", slo_seconds: float | None = None) -> None:
        self.sample = sample
        self.slo_seconds = slo_seconds
        self._spans: list[dict[str, Any]] = []
        self._seq = 0
        self._head_limit: int | None = None
        self._every: int | None = None
        self._head_seen: set[int] = set()
        self._pending: dict[int, list[dict[str, Any]]] = {}
        if sample in ("all", "slo"):
            if sample == "slo" and slo_seconds is None:
                raise ValueError("'slo' sampling needs slo_seconds")
        elif match := _HEAD_N.match(sample):
            self._head_limit = int(match.group(1))
            if self._head_limit < 1:
                raise ValueError("head:N needs N >= 1")
        elif match := _ONE_IN_K.match(sample):
            self._every = int(match.group(1))
            if self._every < 1:
                raise ValueError("1-in-K needs K >= 1")
        else:
            raise ValueError(
                f"unknown trace sample mode {sample!r}; choose one of "
                f"{TRACE_SAMPLE_MODES} (with N/K filled in)"
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _span(
        self, time: float, kind: str, request: "Request | None", attrs: dict
    ) -> dict[str, Any]:
        span: dict[str, Any] = {"seq": self._seq, "time": time, "kind": kind}
        self._seq += 1
        if request is not None:
            span["request_id"] = request.request_id
            span["tenant"] = request.tenant
            span["graph_size"] = request.graph_size
        span.update(attrs)
        return span

    def _wants(self, request: "Request") -> bool:
        if self._head_limit is not None:
            if request.request_id in self._head_seen:
                return True
            if len(self._head_seen) < self._head_limit:
                self._head_seen.add(request.request_id)
                return True
            return False
        if self._every is not None:
            return request.request_id % self._every == 0
        return True

    def request_event(
        self, time: float, kind: str, request: "Request", **attrs: Any
    ) -> None:
        """Record one lifecycle span, honouring the sampling mode."""
        if not self._wants(request):
            return
        span = self._span(time, kind, request, attrs)
        if self.sample != "slo":
            self._spans.append(span)
            return
        # Violators-only: buffer until the lifecycle closes, then keep the
        # request's whole story or drop it.  Memory ~ requests in flight.
        buffer = self._pending.setdefault(request.request_id, [])
        buffer.append(span)
        if kind == SPAN_DEPART:
            del self._pending[request.request_id]
            if attrs.get("violated", False):
                self._spans.extend(buffer)
        elif kind in (SPAN_SHED, SPAN_FAIL):
            # Failing to be served at all is the strongest SLO violation
            # there is: sheds and retry give-ups always commit.
            del self._pending[request.request_id]
            self._spans.extend(buffer)

    def fleet_event(self, time: float, kind: str, **attrs: Any) -> None:
        """Record one fleet-level span (never sampled out — they are rare)."""
        self._spans.append(self._span(time, kind, None, attrs))

    def finish(self) -> None:
        """Drop still-open buffers (nothing admitted stays in flight)."""
        self._pending.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self) -> list[dict[str, Any]]:
        """All committed spans in emission order.

        In ``slo`` mode requests commit atomically at their terminal
        span, so the list is re-sorted by ``seq`` to restore global
        emission order before it is read or exported.
        """
        if self.sample == "slo":
            self._spans.sort(key=lambda s: s["seq"])
        return list(self._spans)

    def request_ids(self) -> list[int]:
        """Distinct request ids with at least one committed span, sorted."""
        return sorted(
            {s["request_id"] for s in self._spans if "request_id" in s}
        )

    def spans_for(self, request_id: int) -> list[dict[str, Any]]:
        """One request's spans in emission order."""
        return [s for s in self.spans() if s.get("request_id") == request_id]


def make_recorder(
    mode: str | None, slo_seconds: float | None = None
) -> TraceRecorder:
    """Build a recorder from a CLI-style mode string.

    ``None`` / ``"off"`` / ``"none"`` yield the :class:`NullRecorder`;
    anything else is a :class:`MemoryTraceRecorder` sampling mode.
    """
    if mode is None or mode in ("off", "none"):
        return NullRecorder()
    return MemoryTraceRecorder(sample=mode, slo_seconds=slo_seconds)
