"""Setuptools shim: enables legacy editable installs in offline environments
(no `wheel` package available, so the PEP-517 editable path cannot build)."""

from setuptools import setup

setup()
