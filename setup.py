"""Setuptools shim: enables legacy editable installs in offline environments
(no `wheel` package available, so the PEP-517 editable path cannot build).

All project metadata lives in pyproject.toml; this file intentionally
stays empty of configuration."""

from setuptools import setup

setup()
