"""Quickstart: evaluate ReGraphX on a Reddit-like workload in ~10 seconds.

Builds a synthetic Reddit-scale workload (per-input statistics match the
paper's Table II), maps it onto the 3-tier heterogeneous ReRAM
architecture, schedules one pipeline period of traffic on the 3D NoC, and
compares the projected epoch time/energy against the Tesla V100 baseline.

Run:  python examples/quickstart.py
"""

from repro.core import ReGraphX, compare_with_gpu
from repro.utils.units import format_seconds


def main() -> None:
    accelerator = ReGraphX()
    print("ReGraphX configuration:")
    for key, value in accelerator.config.summary().items():
        print(f"  {key:>18}: {value}")

    print("\nBuilding a Reddit-like workload (scale 0.02)...")
    workload = accelerator.build_workload("reddit", scale=0.02, seed=0)
    print(f"  merged input sub-graph: {workload.rep_subgraph}")
    print(f"  adjacency blocks (8x8): {workload.block_mapping.nnz_blocks}")
    print(f"  inputs per epoch (full scale): {workload.full_scale_num_inputs}")

    print("\nEvaluating with tree multicast...")
    report = accelerator.evaluate(workload, multicast=True)
    print(f"  worst-stage computation:   {format_seconds(report.worst_compute)}")
    print(f"  worst-stage communication: {format_seconds(report.worst_communication)}")
    print(f"  pipeline period:           {format_seconds(report.pipeline.period)}")
    print(f"  epoch time:                {format_seconds(report.epoch_seconds)}")
    print(f"  epoch energy:              {report.epoch_energy:.2f} J")

    comparison = compare_with_gpu(report)
    print("\nVersus the Tesla V100 running Cluster-GCN:")
    print(f"  speedup:          {comparison.speedup:.2f}x   (paper: ~3X)")
    print(f"  energy savings:   {comparison.energy_ratio:.2f}x  (paper: up to 11X)")
    print(f"  EDP improvement:  {comparison.edp_improvement:.1f}x  (paper: ~34X)")


if __name__ == "__main__":
    main()
