"""Functional ReRAM demo: run a GCN layer's math on simulated crossbars.

Programs real (quantized, bit-sliced) ReRAM crossbar models with a GCN
layer's weights, streams activations through them bit-serially, and checks
the analog-pipeline result against the floating-point reference — showing
the V-layer/E-layer decomposition of paper Fig. 1 executing on the actual
crossbar primitives.

Run:  python examples/crossbar_inference.py
"""

import numpy as np

from repro.gnn.ops import relu
from repro.graph import load_dataset
from repro.reram import ReRAMTile, block_tile_adjacency, v_tile_spec
from repro.utils.rng import rng_from_seed


def main() -> None:
    rng = rng_from_seed(3)
    graph = load_dataset("ppi", scale=0.004, seed=3)
    print(f"graph: {graph}")

    in_dim, out_dim = graph.feature_dim, 96
    weights = rng.normal(scale=0.2, size=(in_dim, out_dim))
    features = graph.features[:24] * 0.1  # keep values inside the fixed-point range

    # --- V-layer on a 128x128 ReRAM tile ------------------------------
    tile = ReRAMTile(v_tile_spec())
    placements = tile.program_layer(weights)
    print(f"\nV-layer: {in_dim}x{out_dim} weights -> {len(placements)} "
          f"crossbar block(s) on one tile")
    analog = tile.matmul(features)
    exact = features @ weights
    err = np.abs(analog - exact).max()
    print(f"  max |analog - float| = {err:.2e} "
          f"(16-bit fixed point, 2-bit cells, 1-bit DACs)")

    # --- E-layer structure on 8x8 blocks ------------------------------
    mapping = block_tile_adjacency(graph, block_size=8)
    big = block_tile_adjacency(graph, block_size=128)
    print(f"\nE-layer: adjacency tiled into 8x8 blocks")
    print(f"  nonzero blocks: {mapping.nnz_blocks}, "
          f"density {mapping.density:.3f}, zeros stored {mapping.zeros_stored}")
    print(f"  the same adjacency in 128x128 blocks stores "
          f"{big.zeros_stored / mapping.zeros_stored:.1f}x more zeros (paper Fig. 3)")

    # Functional E-layer: sparse aggregation of the V-layer output.
    a_hat = graph.normalized_adjacency()[:24, :24]
    z = relu(a_hat @ analog)
    z_ref = relu(a_hat @ exact)
    print(f"\nfull neural layer (V then E) max error vs float: "
          f"{np.abs(z - z_ref).max():.2e}")

    reads = sum(ima.total_reads for ima in tile.imas)
    writes = sum(ima.total_writes for ima in tile.imas)
    print(f"crossbar activity: {reads} MAC waves, {writes} cell writes")


if __name__ == "__main__":
    main()
