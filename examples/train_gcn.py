"""Train a 4-layer GCN with Cluster-GCN batching on a synthetic PPI graph.

This exercises the *functional* substrate end to end: synthetic dataset
generation, METIS-style multilevel partitioning, stochastic multi-cluster
batching, and the numpy GCN with exact forward/backward passes — the same
computation the ReGraphX hardware model schedules.

Run:  python examples/train_gcn.py
"""

from repro.gnn import GCN, ClusterGCNTrainer
from repro.graph import ClusterBatcher, get_dataset_spec, load_dataset, partition_graph


def main() -> None:
    spec = get_dataset_spec("ppi")
    print("Generating a PPI-like graph (scale 0.05)...")
    graph = load_dataset("ppi", scale=0.05, seed=7, feature_noise=4.0)
    print(f"  {graph}")

    num_parts = 12
    print(f"Partitioning into {num_parts} clusters (multilevel, METIS-style)...")
    partition = partition_graph(graph, num_parts, seed=7)
    print(
        f"  edge cut: {partition.edge_cut} / {graph.num_edges} edges "
        f"({100 * partition.edge_cut / graph.num_edges:.1f}%), "
        f"imbalance {partition.imbalance:.3f}"
    )

    beta = 3
    batcher = ClusterBatcher(graph, partition, batch_size=beta, seed=7)
    print(f"Batch size beta = {beta} -> {batcher.num_inputs} merged inputs per epoch")

    model = GCN(
        feature_dim=spec.feature_dim,
        hidden_dim=64,
        num_classes=spec.num_classes,
        num_layers=spec.num_layers,
        seed=7,
    )
    print(f"4-layer GCN with {model.num_parameters():,} parameters")

    trainer = ClusterGCNTrainer(model, graph, batcher, lr=0.01, seed=7)
    history = trainer.fit(num_epochs=12, verbose=True)
    print(f"\nFinal validation accuracy: {history.final_val_accuracy:.3f}")


if __name__ == "__main__":
    main()
