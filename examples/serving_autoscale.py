"""Autoscaling walkthrough: ride a bursty load instead of buying the peak.

Offers the same seeded bursty MMPP request stream to three fleets —
statically provisioned for the burst (the capacity planner's answer),
statically provisioned at the autoscaler's floor, and a closed-loop
fleet driven by the target-utilization autoscaler — then prints what
each strategy pays in instance-seconds and what tail latency it buys.

The punchline is the last line: the instance-seconds the autoscaler
saves against static peak provisioning while meeting the same SLO.

Run:  PYTHONPATH=src python examples/serving_autoscale.py
"""

from repro.serve import (
    ServingScenario,
    plan_capacity,
    scenario_with,
    simulate_serving_scenario,
)

SLO_SECONDS = 0.05
MAX_VIOLATION_RATE = 0.01


def describe(name: str, report) -> None:
    print(f"  {name:<14} p99 {report.latency.p99 * 1e3:7.1f} ms   "
          f"violations {report.slo_violation_rate:6.2%}   "
          f"instance-seconds {report.instance_seconds:6.2f}   "
          f"peak fleet {report.peak_instances}")


def main() -> None:
    base = ServingScenario(
        dataset="ppi",
        scale=0.05,
        arrival="mmpp",          # quiet phases + 8x bursts, same average QPS
        qps=150.0,
        duration_seconds=2.0,
        instances=1,
        slo_seconds=SLO_SECONDS,
        seed=0,
    )

    print("Planning static capacity for the burst (binary search)...")
    plan = plan_capacity(base, max_instances=16,
                         max_violation_rate=MAX_VIOLATION_RATE)
    peak = plan.instances
    print(f"  the burst needs {peak} instance(s) statically\n")

    print("Same workload, three provisioning strategies:")
    static_peak = simulate_serving_scenario(scenario_with(base, instances=peak))
    describe("static-peak", static_peak)

    static_min = simulate_serving_scenario(scenario_with(base, instances=1))
    describe("static-min", static_min)

    autoscaled = simulate_serving_scenario(
        scenario_with(
            base,
            instances=1,
            autoscaler="target-util",
            autoscale_target=0.7,
            min_instances=1,
            max_instances=peak,   # never provision more than static would
            warmup_seconds=0.02,
        )
    )
    describe("autoscaled", autoscaled)

    stats = autoscaled.autoscale
    print(f"\nScaling trajectory: {stats.scale_out_events} scale-out(s), "
          f"{stats.scale_in_events} scale-in(s), fleet ranged "
          f"[{stats.min_instances}, {stats.peak_instances}]")

    saved = static_peak.instance_seconds - autoscaled.instance_seconds
    fraction = saved / static_peak.instance_seconds
    slo_ok = autoscaled.slo_violation_rate <= MAX_VIOLATION_RATE
    print(f"instance-seconds saved vs static peak: {saved:.2f} "
          f"({fraction:.1%}), SLO {'met' if slo_ok else 'MISSED'}")


if __name__ == "__main__":
    main()
