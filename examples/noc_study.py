"""NoC design study: 3D vs planar meshes, multicast vs unicast routing.

Reproduces the architectural argument of paper Sec. IV.B on synthetic
GNN-shaped traffic: the many-to-one-to-many pattern of V-PEs talking to a
shared set of E-PEs.  Compares four design points:

  3D mesh + multicast | 3D mesh + unicast | planar + multicast | planar + unicast

Run:  python examples/noc_study.py
"""

from repro.baselines.planar import planar_mesh_for, planar_router_map
from repro.noc import (
    Mesh3D,
    Message,
    NoCConfig,
    StaticScheduler,
    many_to_one_to_many_traffic,
)
from repro.utils.units import format_seconds


def remap_messages(messages: list[Message], mapping: dict[int, int]) -> list[Message]:
    """Translate a 3D trace onto the flattened planar mesh."""
    return [
        Message(
            src=mapping[m.src],
            dests=tuple(mapping[d] for d in m.dests),
            size_bits=m.size_bits,
            inject_cycle=m.inject_cycle,
            tag=m.tag,
            msg_id=m.msg_id,
        )
        for m in messages
    ]


def main() -> None:
    topo3d = Mesh3D(8, 8, 3)
    config = NoCConfig()
    # GNN-shaped traffic: 16 V routers (middle tier) each multicast a
    # feature block to 8 E routers (bottom tier), which reply to all
    # sources — the paper's many-to-one-to-many pattern.
    sources = topo3d.tier_routers(1)[:16]
    sinks = topo3d.tier_routers(0)[:8]
    messages = many_to_one_to_many_traffic(
        topo3d, sources, sinks, size_bits=16 * 1024
    )
    print(f"traffic: {len(messages)} messages, "
          f"{sum(m.size_bits for m in messages) / 8e3:.0f} KB total")

    flat = planar_mesh_for(topo3d)
    mapping = planar_router_map(topo3d)
    flat_messages = remap_messages(messages, mapping)

    print(f"\n{'design point':<24} {'delay':>10} {'flit-hops':>10} {'energy':>10}")
    for label, topo, msgs, multicast in [
        ("3D mesh + multicast", topo3d, messages, True),
        ("3D mesh + unicast", topo3d, messages, False),
        ("planar mesh + multicast", flat, flat_messages, True),
        ("planar mesh + unicast", flat, flat_messages, False),
    ]:
        result = StaticScheduler(topo, config).simulate(msgs, multicast=multicast)
        print(
            f"{label:<24} {format_seconds(result.makespan_seconds):>10} "
            f"{result.total_flit_hops:>10} {result.energy_joules() * 1e9:>8.1f} nJ"
        )

    print(
        "\nTree multicast is the dominant lever (duplicate flits vanish); "
        "the 3D mesh\nmatters most where multicast cannot help - under "
        "unicast the planar layout's\nlong V<->E paths more than double "
        "the delay. Both effects are what the paper\nbuilds ReGraphX "
        "around."
    )


if __name__ == "__main__":
    main()
