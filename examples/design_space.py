"""Design-space exploration: batch size, mapping policy, and NoC clocks.

Uses the full ReGraphX model to answer three questions a designer would
ask (all ablations DESIGN.md calls out):

1. How does batch size beta trade training time against E-PE storage?
2. What does the SA mapper buy over a random placement?
3. How sensitive is the pipeline to the NoC clock?

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.core import ReGraphX, random_mapping
from repro.core.config import ReGraphXConfig
from repro.experiments.fig6_batch import run_fig6
from repro.noc.schedule import NoCConfig
from repro.utils.units import GHZ, format_seconds


def batch_size_study() -> None:
    print("=== 1. batch size trade-off (Reddit-like) ===")
    result = run_fig6(dataset="reddit", betas=(1, 5, 10, 20))
    print(result.table().render())


def mapping_study() -> None:
    print("\n=== 2. mapping policy (Reddit-like) ===")
    accelerator = ReGraphX()
    workload = accelerator.build_workload("reddit", scale=0.02, seed=0)
    for label, kwargs in [
        ("contiguous (aligned)", {"use_sa": False}),
        ("simulated annealing", {"use_sa": True}),
        ("random placement", {"stage_map": random_mapping(accelerator.config, seed=5)}),
    ]:
        report = accelerator.evaluate(workload, multicast=True, **kwargs)
        print(
            f"  {label:<22} worst comm "
            f"{format_seconds(report.worst_communication)}  period "
            f"{format_seconds(report.pipeline.period)}"
        )


def noc_clock_study() -> None:
    print("\n=== 3. NoC clock sensitivity (Reddit-like) ===")
    for clock_ghz in (0.2, 0.4, 0.8, 1.6):
        config = ReGraphXConfig(noc=NoCConfig(clock_hz=clock_ghz * GHZ))
        accelerator = ReGraphX(config)
        workload = accelerator.build_workload("reddit", scale=0.02, seed=0)
        report = accelerator.evaluate(workload, multicast=True, use_sa=False)
        bound = "comm" if report.worst_communication > report.worst_compute else "comp"
        print(
            f"  {clock_ghz:.1f} GHz: period "
            f"{format_seconds(report.pipeline.period)} ({bound}-bound), epoch "
            f"{format_seconds(report.epoch_seconds)}"
        )
    print("\nOnce communication is cheaper than the fixed ReRAM compute time,")
    print("a faster NoC stops helping - the paper's 'any further speed-up in")
    print("computation will be meaningless' observation, inverted.")


def main() -> None:
    batch_size_study()
    mapping_study()
    noc_clock_study()


if __name__ == "__main__":
    main()
