"""Robustness study: does GCN accuracy survive ReRAM device non-ideality?

Trains a small GCN in float, then evaluates inference with the V-layer
matrix products executed through *noisy* bit-sliced crossbars (lognormal
conductance variation + stuck-at faults).  The punchline mirrors the
analog-accelerator literature: classification tolerates a few percent of
MAC error, so realistic device variation costs little accuracy.

Run:  python examples/robustness.py
"""

import numpy as np

from repro.gnn import GCN, ClusterGCNTrainer
from repro.gnn.metrics import accuracy
from repro.gnn.ops import relu
from repro.graph import ClusterBatcher, load_dataset, partition_graph
from repro.reram.variation import VariationModel, noisy_matvec


def noisy_forward(model: GCN, a_hat, features, variation: VariationModel):
    """Model forward pass with every V-layer multiply on noisy crossbars."""
    h = np.asarray(features, dtype=np.float64)
    for idx, layer in enumerate(model.layers):
        v_out = np.stack(
            [
                noisy_matvec(
                    layer.weight,
                    row,
                    VariationModel(
                        sigma=variation.sigma,
                        stuck_off_rate=variation.stuck_off_rate,
                        stuck_on_rate=variation.stuck_on_rate,
                        seed=variation.seed + 37 * idx,
                    ),
                )
                for row in h
            ]
        )
        pre = np.asarray(a_hat @ v_out)
        h = relu(pre) if layer.activation == "relu" else pre
    return h


def main() -> None:
    # A deliberately hard task (high feature noise, small model) so the
    # accuracy cliff is visible once device error gets large.
    graph = load_dataset("ppi", scale=0.01, seed=4, feature_noise=5.0)
    partition = partition_graph(graph, 4, seed=4)
    batcher = ClusterBatcher(graph, partition, 2, seed=4)
    model = GCN(graph.feature_dim, 16, graph.num_classes, num_layers=2, seed=4)
    trainer = ClusterGCNTrainer(model, graph, batcher, lr=0.02, seed=4)
    trainer.fit(10)

    # Evaluate on a manageable slice of the validation set.
    nodes = np.flatnonzero(trainer.val_mask)[:64]
    a_hat = graph.normalized_adjacency()[nodes][:, nodes]
    features = graph.features[nodes] * 0.05  # scale into fixed-point range
    labels = graph.labels[nodes]

    ideal_logits = model.forward(a_hat, features)
    ideal_acc = accuracy(np.argmax(ideal_logits, axis=1), labels)
    print(f"float inference accuracy on slice: {ideal_acc:.3f}\n")
    print(f"{'non-ideality':<28} {'accuracy':>9} {'delta':>8} {'logit err':>10}")
    for label, variation in [
        ("ideal crossbars (quantized)", VariationModel()),
        ("sigma = 0.05", VariationModel(sigma=0.05, seed=1)),
        ("sigma = 0.10", VariationModel(sigma=0.10, seed=1)),
        ("sigma = 0.20", VariationModel(sigma=0.20, seed=1)),
        ("sigma = 0.50", VariationModel(sigma=0.50, seed=1)),
        ("1% stuck-off cells", VariationModel(stuck_off_rate=0.01, seed=1)),
        ("10% stuck-off cells", VariationModel(stuck_off_rate=0.10, seed=1)),
    ]:
        logits = noisy_forward(model, a_hat, features, variation)
        acc = accuracy(np.argmax(logits, axis=1), labels)
        err = np.linalg.norm(logits - ideal_logits) / np.linalg.norm(ideal_logits)
        print(f"{label:<28} {acc:>9.3f} {acc - ideal_acc:>+8.3f} {err:>10.3f}")
    print(
        "\nClassification absorbs small analog error; accuracy only moves "
        "once the\nrelative logit error reaches tens of percent - the "
        "standard analog-accelerator result."
    )


if __name__ == "__main__":
    main()
