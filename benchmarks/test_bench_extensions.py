"""Benchmarks for the extension studies (paper future work + robustness).

* **Tier-count design sweep** — quantifies the paper's thermal remark:
  more tiers add E-PE capacity but raise peak temperature; the Pareto
  front exposes the trade-off.
* **Device-variation robustness** — MAC error vs lognormal conductance
  sigma and stuck-at fault rates (the analog credibility check).
* **NoC saturation** — latency/throughput curve of the 3D mesh.
"""

from benchmarks.conftest import run_once
from repro.core.dse import pareto_front, sweep_tiers
from repro.noc.analysis import latency_throughput_sweep
from repro.noc.topology import Mesh3D
from repro.reram.variation import VariationModel, relative_error_study
from repro.utils.units import format_seconds


def test_extension_tier_sweep(benchmark):
    points = run_once(
        benchmark, sweep_tiers, [2, 3, 4, 6], workload_dataset="reddit", scale=0.01
    )
    print("\ndesign    epoch        energy(J)  peak(C)  feasible")
    for p in points:
        print(
            f"{p.label:<9} {format_seconds(p.epoch_seconds):<12} "
            f"{p.epoch_energy_joules:<10.2f} {p.peak_celsius:<8.1f} "
            f"{p.thermally_feasible}"
        )
    front = pareto_front(points)
    print(f"Pareto front: {[p.label for p in front]}")
    temps = [p.peak_celsius for p in points]
    assert temps == sorted(temps)  # stacking always heats up
    three_tier = next(p for p in points if p.label == "3-tier")
    assert three_tier.thermally_feasible  # the paper's design point holds


def test_extension_variation_robustness(benchmark):
    def run():
        rows = []
        for sigma in (0.0, 0.05, 0.1, 0.2):
            rows.append(
                ("sigma", sigma,
                 relative_error_study(VariationModel(sigma=sigma), trials=3))
            )
        for rate in (0.01, 0.05):
            rows.append(
                ("stuck-off", rate,
                 relative_error_study(
                     VariationModel(stuck_off_rate=rate), trials=3
                 ))
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nnon-ideality        value   relative MAC error")
    for kind, value, err in rows:
        print(f"{kind:<18} {value:<7} {err:.4f}")
    sigma_errors = [err for kind, _, err in rows if kind == "sigma"]
    assert sigma_errors == sorted(sigma_errors)
    assert sigma_errors[0] < 0.01  # ideal path is quantization-limited


def test_extension_noc_saturation(benchmark):
    topo = Mesh3D(8, 8, 3)
    points = run_once(
        benchmark,
        latency_throughput_sweep,
        topo,
        rates=[0.25, 1.0, 4.0, 16.0],
        window_cycles=1000,
    )
    print("\nrate(msg/router/100cyc)  avg latency(cyc)  max link load")
    for p in points:
        print(
            f"{p.offered_rate:>22}  {p.average_latency_cycles:>16.1f}  "
            f"{p.max_link_load:>13}"
        )
    latencies = [p.average_latency_cycles for p in points]
    assert latencies == sorted(latencies)
