"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure and prints the same
rows/series the paper reports (shapes are asserted; absolute numbers are
simulator-scale).  Use ``pytest benchmarks/ --benchmark-only -s`` to see
the rendered tables.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are deterministic end-to-end simulations (seconds of
    wall clock), so a single round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
