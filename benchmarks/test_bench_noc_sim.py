"""NoC simulator backend benchmark: event-driven engine vs. cycle oracle.

The trace is the worst case for a cycle stepper and the common case for
campaign sweeps: high-contention many-to-one-to-many (GNN-shaped) traffic
whose injections are spread over a wide window, so the network is sparse
in time.  The cycle backend pays for every elapsed cycle times every
pending packet; the event engine pays only per link grant, so its cost
scales with flit-hops.  Both must produce bit-identical results — the
speedup is pure accounting, not model drift.
"""

from __future__ import annotations

import time

from repro.noc.simulator import FlitSimulator
from repro.noc.topology import Mesh3D
from repro.noc.traffic_gen import many_to_one_to_many_traffic

TOPO = Mesh3D(8, 8, 3)


def _timed(fn, *args, **kwargs) -> float:
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _contended_sparse_trace(inject_window: int):
    """All 64 V-tier routers multicast to 8 shared E-tier sinks (and back):
    heavy ejection-port contention, spread over ``inject_window`` cycles."""
    return many_to_one_to_many_traffic(
        TOPO,
        sources=TOPO.tier_routers(1),
        sinks=TOPO.tier_routers(0)[:8],
        size_bits=1024,
        seed=0,
        inject_window=inject_window,
    )


def test_event_backend_speedup(benchmark):
    """Acceptance: >= 10x speedup on sparse-in-time contended traffic."""
    msgs = _contended_sparse_trace(inject_window=20_000)
    sim = FlitSimulator(TOPO)

    event = benchmark.pedantic(
        sim.simulate, args=(msgs,), kwargs={"backend": "event"},
        rounds=1, iterations=1,
    )
    # Best-of-3 for the short event-side measurement, so a preempted CI
    # runner cannot inflate a ~40 ms window into a spurious failure.
    t_event = min(
        _timed(sim.simulate, msgs, backend="event") for _ in range(3)
    )
    t0 = time.perf_counter()
    cycle = sim.simulate(msgs, backend="cycle")
    t_cycle = time.perf_counter() - t0

    assert event.message_finish == cycle.message_finish
    assert event.makespan_cycles == cycle.makespan_cycles
    assert event.link_stats.flits == cycle.link_stats.flits

    speedup = t_cycle / t_event
    print(
        f"\n{len(msgs)} messages, makespan {event.makespan_cycles} cycles: "
        f"event {t_event * 1e3:.1f} ms, cycle {t_cycle * 1e3:.1f} ms "
        f"-> {speedup:.0f}x speedup"
    )
    assert speedup >= 10.0


def test_event_backend_smoke(benchmark):
    """Single fast case for CI: the event backend digests a contended trace
    and matches the oracle (run via ``-k smoke`` on every Python version)."""
    msgs = _contended_sparse_trace(inject_window=500)
    sim = FlitSimulator(TOPO)
    event = benchmark.pedantic(
        sim.simulate, args=(msgs,), kwargs={"backend": "event"},
        rounds=1, iterations=1,
    )
    cycle = sim.simulate(msgs, backend="cycle")
    assert event.message_finish == cycle.message_finish
    assert event.link_stats.flits == cycle.link_stats.flits
    assert event.makespan_cycles >= 500
