"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures, but the arguments the paper makes in prose:
* heterogeneity (Sec. IV.A): an all-128x128 design wastes storage;
* 3D stacking (Sec. IV.B): a planar layout stretches V<->E paths;
* SA mapping (Sec. IV.D): placement vs. a random allocator;
* the NoC substrate itself under standard synthetic patterns.
"""

from benchmarks.conftest import run_once
from repro.baselines.homogeneous import homogeneous_epe_demand
from repro.baselines.planar import planar_mesh_for, planar_router_map
from repro.core.accelerator import ReGraphX
from repro.core.mapping import random_mapping
from repro.graph.datasets import load_dataset
from repro.noc import Mesh3D, Message, NoCConfig, StaticScheduler, uniform_random_traffic
from repro.reram.sparse_mapping import block_tile_adjacency
from repro.utils.units import format_seconds


def test_ablation_heterogeneity(benchmark):
    """Heterogeneous (8x8 E-PEs) vs homogeneous (128x128 everywhere)."""

    def run():
        graph = load_dataset("reddit", scale=0.01, seed=0, with_features=False)
        small = block_tile_adjacency(graph, 8)
        homogeneous = homogeneous_epe_demand(graph)
        return small, homogeneous

    small, homogeneous = run_once(benchmark, run)
    waste = homogeneous.zeros_stored / small.zeros_stored
    print(
        f"\nheterogeneous zeros: {small.zeros_stored:,} | homogeneous: "
        f"{homogeneous.zeros_stored:,} ({waste:.1f}x more)"
    )
    assert waste > 1.0


def test_ablation_planar_vs_3d(benchmark):
    """The same GNN-shaped multicast on a 3D mesh vs a flattened plane."""
    topo = Mesh3D(8, 8, 3)
    config = NoCConfig()
    sources = topo.tier_routers(1)
    sinks = topo.tier_routers(0)[:16]
    messages = [
        Message(src=s, dests=tuple(sinks), size_bits=8192, tag="gather", msg_id=i)
        for i, s in enumerate(sources)
    ]
    flat = planar_mesh_for(topo)
    mapping = planar_router_map(topo)
    flat_messages = [
        Message(
            src=mapping[m.src],
            dests=tuple(mapping[d] for d in m.dests),
            size_bits=m.size_bits,
            tag=m.tag,
            msg_id=m.msg_id,
        )
        for m in messages
    ]

    def run():
        r3d = StaticScheduler(topo, config).simulate(messages, multicast=False)
        r2d = StaticScheduler(flat, config).simulate(flat_messages, multicast=False)
        return r3d, r2d

    r3d, r2d = run_once(benchmark, run)
    print(
        f"\n3D unicast delay {format_seconds(r3d.makespan_seconds)} "
        f"({r3d.total_flit_hops:,} flit-hops) | planar "
        f"{format_seconds(r2d.makespan_seconds)} ({r2d.total_flit_hops:,})"
    )
    assert r2d.total_flit_hops > r3d.total_flit_hops
    assert r2d.makespan_cycles >= r3d.makespan_cycles


def test_ablation_mapping_policy(benchmark):
    """SA / contiguous placement vs a random allocator."""
    accelerator = ReGraphX()
    workload = accelerator.build_workload("reddit", scale=0.02, seed=0)

    def run():
        aligned = accelerator.evaluate(workload, multicast=True, use_sa=False)
        annealed = accelerator.evaluate(workload, multicast=True, use_sa=True, seed=0)
        randomized = accelerator.evaluate(
            workload, stage_map=random_mapping(accelerator.config, seed=3)
        )
        return aligned, annealed, randomized

    aligned, annealed, randomized = run_once(benchmark, run)
    print("\nmapping         worst comm    NoC energy/input   flit-hops")
    for label, rep in [
        ("contiguous", aligned),
        ("SA", annealed),
        ("random", randomized),
    ]:
        print(
            f"{label:<14} {format_seconds(rep.worst_communication):>11} "
            f"{rep.noc_energy_per_input * 1e6:>14.1f} uJ "
            f"{rep.schedule.total_flit_hops:>11,}"
        )
    # The SA objective (paper Sec. IV.D) is long-range traffic reduction:
    # placement-aware mappings move far fewer flit-hops (=> NoC energy)
    # than a random allocator.  Delay is ejection/bandwidth-bound in this
    # traffic, so it is mapping-insensitive (within ~20%).
    assert annealed.noc_energy_per_input < randomized.noc_energy_per_input
    assert aligned.noc_energy_per_input < randomized.noc_energy_per_input
    assert (
        annealed.worst_communication
        < 1.25 * randomized.worst_communication
    )


def test_ablation_noc_saturation(benchmark):
    """NoC substrate microbenchmark: uniform random load sweep."""
    topo = Mesh3D(8, 8, 3)
    scheduler = StaticScheduler(topo, NoCConfig())

    def run():
        rows = []
        for count in (50, 200, 800):
            msgs = uniform_random_traffic(topo, count, size_bits=512, seed=1)
            res = scheduler.simulate(msgs, multicast=False)
            rows.append((count, res.makespan_cycles, res.link_stats.max_link_load))
        return rows

    rows = run_once(benchmark, run)
    print("\nmessages  makespan(cycles)  max-link-load(flits)")
    for count, makespan, load in rows:
        print(f"{count:>8}  {makespan:>16}  {load:>20}")
    makespans = [r[1] for r in rows]
    assert makespans == sorted(makespans)
