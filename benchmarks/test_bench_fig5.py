"""Fig. 5 benchmark: training/validation accuracy vs. batch size (Reddit).

Paper shape: final accuracy is insensitive to beta; small beta (1, 5)
shows unstable curves with sudden drops; large beta trains smoothly.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5_accuracy import run_fig5


def test_fig5_accuracy_vs_batch_size(benchmark):
    result = run_once(
        benchmark,
        run_fig5,
        scale=0.015,
        num_partitions=40,
        betas=(1, 5, 10, 20),
        num_epochs=25,
        hidden_dim=48,
        seed=0,
    )
    print("\n" + result.table().render())
    for beta, history in sorted(result.histories.items()):
        trace = " ".join(f"{a:.2f}" for a in history.val_accuracy)
        print(f"beta={beta:>2} val acc: {trace}")
    # Large batches converge to high accuracy...
    assert result.final_accuracy(10) > 0.7
    assert result.final_accuracy(20) > 0.7
    # ...and small batches are no more stable than large ones (the paper's
    # instability claim, asserted as an ordering rather than a threshold).
    assert result.stability(1) >= result.stability(20)
