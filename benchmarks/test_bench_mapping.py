"""Mapping-optimizer benchmark: incremental-cost annealer vs. full oracle.

The SA stage mapper sits on the critical path of every ``use_sa``
evaluation: the full-recompute oracle re-materializes every leg's
O(|A|·|B|) pairwise-distance matrix per proposal, while the incremental
engine updates exact integer per-leg distance sums for just the legs
incident to the two swapped stages.  Both draw identical RNG sequences
and must return the bit-identical best :class:`StageMap` — the speedup is
pure accounting, not search drift.  The companion measurement times the
vectorized numpy group-by traffic extraction against its scalar oracle.

Results land in ``BENCH_mapping.json`` at the repo root so the perf
trajectory stays tracked in-tree.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.accelerator import ReGraphX
from repro.core.config import ReGraphXConfig
from repro.core.mapping import (
    anneal_mapping,
    communication_legs,
    contiguous_mapping,
    default_sa_iterations,
)
from repro.core.traffic import GNNTrafficModel

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_mapping.json"

CONFIG = ReGraphXConfig()  # the paper's 8x8x3 design point


def _volumes() -> dict[tuple[str, str], float]:
    """Non-uniform leg weights, so the cost model is exercised fully."""
    legs = communication_legs(CONFIG.num_layers)
    return {leg: float(i + 1) for i, leg in enumerate(legs)}


def _timed(fn, *args, **kwargs) -> float:
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_mapping.json (atomic enough for CI)."""
    data: dict = {}
    if BENCH_PATH.is_file():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_incremental_annealer_speedup(benchmark):
    """Acceptance: >= 10x over the full-recompute oracle at default budget."""
    volumes = _volumes()
    iterations = default_sa_iterations(CONFIG)
    assert iterations == 2000  # the 8x8 mesh anchor the budget scales from

    incremental = benchmark.pedantic(
        anneal_mapping,
        args=(CONFIG, volumes),
        kwargs={"iterations": iterations, "seed": 0, "cost_mode": "incremental"},
        rounds=1, iterations=1,
    )
    # Best-of-3 for the short incremental measurement, so a preempted CI
    # runner cannot inflate a ~50 ms window into a spurious failure.
    t_incremental = min(
        _timed(
            anneal_mapping, CONFIG, volumes,
            iterations=iterations, seed=0, cost_mode="incremental",
        )
        for _ in range(3)
    )
    t_full = _timed(
        anneal_mapping, CONFIG, volumes,
        iterations=iterations, seed=0, cost_mode="full",
    )
    full = anneal_mapping(
        CONFIG, volumes, iterations=iterations, seed=0, cost_mode="full"
    )

    assert incremental.assignment == full.assignment  # bit-identical search

    speedup = t_full / t_incremental
    print(
        f"\n{iterations} SA iterations on 8x8x3: incremental "
        f"{t_incremental * 1e3:.1f} ms, full {t_full * 1e3:.1f} ms "
        f"-> {speedup:.0f}x speedup"
    )
    _record(
        "annealer",
        {
            "mesh": "8x8x3",
            "iterations": iterations,
            "incremental_seconds": round(t_incremental, 4),
            "full_seconds": round(t_full, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert speedup >= 10.0


def test_traffic_extraction_speedup(benchmark):
    """Vectorized group-by extraction matches the scalar oracle, faster."""
    accelerator = ReGraphX()
    workload = accelerator.build_workload("ppi", scale=0.05, seed=0)
    model = GNNTrafficModel(
        accelerator.config,
        contiguous_mapping(accelerator.config),
        workload.block_mapping,
        workload.num_nodes_per_input,
        workload.layer_dims,
    )
    vectorized = benchmark.pedantic(
        model.messages, kwargs={"vectorized": True}, rounds=1, iterations=1
    )
    t_vectorized = min(
        _timed(model.messages, vectorized=True) for _ in range(3)
    )
    t_loop = _timed(model.messages, vectorized=False)
    loop = model.messages(vectorized=False)

    assert vectorized == loop  # same ids, ordering, sizes, tags

    speedup = t_loop / t_vectorized
    print(
        f"\n{len(loop)} messages: vectorized {t_vectorized * 1e3:.1f} ms, "
        f"loop {t_loop * 1e3:.1f} ms -> {speedup:.1f}x speedup"
    )
    _record(
        "traffic",
        {
            "dataset": "ppi@0.05",
            "messages": len(loop),
            "vectorized_seconds": round(t_vectorized, 4),
            "loop_seconds": round(t_loop, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert speedup >= 2.0


def test_mapping_smoke(benchmark):
    """Single fast case for CI: both cost modes agree, restarts behave
    (run via ``-k smoke`` on every Python version)."""
    volumes = _volumes()
    incremental = benchmark.pedantic(
        anneal_mapping,
        args=(CONFIG, volumes),
        kwargs={"iterations": 300, "seed": 1, "cost_mode": "incremental"},
        rounds=1, iterations=1,
    )
    full = anneal_mapping(
        CONFIG, volumes, iterations=300, seed=1, cost_mode="full"
    )
    assert incremental.assignment == full.assignment
    multi = anneal_mapping(
        CONFIG, volumes, iterations=300, seed=1, restarts=3
    )
    again = anneal_mapping(
        CONFIG, volumes, iterations=300, seed=1, restarts=3
    )
    assert multi.assignment == again.assignment
