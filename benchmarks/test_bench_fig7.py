"""Fig. 7 benchmark: computation vs. communication delay, unicast/multicast.

Paper shape: communication always dominates computation; without multicast
the communication delay is ~57% worse on average.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7_noc import run_fig7


def test_fig7_noc_delays(benchmark):
    result = run_once(benchmark, run_fig7, seed=0)
    print("\n" + result.table().render())
    print(f"mean unicast penalty: {result.mean_unicast_penalty:.2f} "
          f"(paper: 1.573, i.e. 57.3% worse)")
    for name, point in result.points.items():
        # Communication dominates computation for every dataset.
        assert point.communication_multicast > point.computation, name
        # Multicast strictly helps.
        assert point.unicast_penalty > 1.0, name
    assert 1.2 < result.mean_unicast_penalty < 2.2
