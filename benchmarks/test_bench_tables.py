"""Benchmarks for Table I (architecture echo) and Table II (dataset stats)."""

from benchmarks.conftest import run_once
from repro.experiments.tables import table1_parameters, table2_datasets


def test_table1_parameters(benchmark):
    table = run_once(benchmark, table1_parameters)
    text = table.render()
    print("\n" + text)
    assert "128x128" in text and "8x8" in text


def test_table2_datasets(benchmark):
    """Regenerates Table II and verifies a synthetic instance hits the
    scaled node/edge targets exactly."""
    table = run_once(benchmark, table2_datasets, check_scale=0.005)
    text = table.render()
    print("\n" + text)
    assert "2449029" in text  # Amazon2M node count, straight from Table II
