"""Telemetry benchmarks: null-recorder overhead and P² sketch accuracy.

Two promises keep the observability layer honest:

* **Opt-out is free.**  The engine resolves a disabled recorder to *no
  recorder* before its event loop, so a run with the default
  :class:`~repro.obs.NullRecorder` must cost the same as one with no
  recorder argument at all (<= 1.10x, measured best-of-3 both ways).
* **Opt-in is cheap.**  The P² backend answers p99 within 2% of the
  store-everything oracle on a million-sample stream while holding a
  constant few dozen floats.

Results land in ``BENCH_obs.json`` at the repo root so the perf
trajectory stays tracked in-tree.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.obs import MemoryTraceRecorder, NullRecorder, make_sketch
from repro.serve.scenario import (
    ServingScenario,
    _service_for,
    simulate_serving_scenario,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

SCENARIO = ServingScenario(
    arrival="mmpp",
    qps=1500.0,
    duration_seconds=1.0,
    instances=2,
    autoscaler="target-util",
    max_instances=6,
    admission="shed",
    queue_budget=64,
    seed=5,
)


def _timed(fn, *args, **kwargs) -> float:
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_obs.json (atomic enough for CI)."""
    data: dict = {}
    if BENCH_PATH.is_file():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _lognormal(n: int, seed: int = 7) -> list[float]:
    rng = random.Random(seed)
    return [rng.lognormvariate(0.0, 0.5) for _ in range(n)]


def test_null_recorder_overhead(benchmark):
    """Acceptance: a NullRecorder run costs <= 1.10x an untraced run."""
    service = _service_for(SCENARIO)  # shared, so only the loop is timed
    benchmark.pedantic(
        simulate_serving_scenario,
        args=(SCENARIO,),
        kwargs={"service": service},
        rounds=1, iterations=1,
    )
    t_plain = min(
        _timed(simulate_serving_scenario, SCENARIO, service=service)
        for _ in range(3)
    )
    t_null = min(
        _timed(
            simulate_serving_scenario, SCENARIO, service=service,
            recorder=NullRecorder(),
        )
        for _ in range(3)
    )
    ratio = t_null / t_plain
    print(
        f"\nuntraced {t_plain * 1e3:.1f} ms, NullRecorder "
        f"{t_null * 1e3:.1f} ms -> {ratio:.3f}x"
    )
    _record(
        "null_recorder",
        {
            "scenario": SCENARIO.display_label,
            "plain_seconds": round(t_plain, 4),
            "null_recorder_seconds": round(t_null, 4),
            "overhead_ratio": round(ratio, 3),
        },
    )
    assert ratio <= 1.10


def test_p2_accuracy_at_scale(benchmark):
    """Acceptance: P² p99 within 2% of exact on 10^6 samples, O(1) state."""
    n = 1_000_000
    values = _lognormal(n)
    sketch = make_sketch("p2")
    state_before = sketch.state_size

    def stream() -> None:
        for v in values:
            sketch.add(v)

    t_stream = benchmark.pedantic(lambda: _timed(stream), rounds=1, iterations=1)
    oracle = make_sketch("exact")
    for v in values:
        oracle.add(v)

    errors = {
        q: abs(sketch.quantile(q) - oracle.quantile(q)) / oracle.quantile(q)
        for q in (50.0, 95.0, 99.0)
    }
    print(
        f"\n{n} samples in {t_stream:.2f} s "
        f"({n / t_stream / 1e3:.0f}k adds/s): "
        + "  ".join(f"p{q:g} err {e:.4%}" for q, e in errors.items())
        + f"  state {sketch.state_size} vs {oracle.state_size} floats"
    )
    _record(
        "p2_accuracy",
        {
            "samples": n,
            "adds_per_second": round(n / t_stream),
            "p50_rel_error": round(errors[50.0], 6),
            "p95_rel_error": round(errors[95.0], 6),
            "p99_rel_error": round(errors[99.0], 6),
            "p2_state_floats": sketch.state_size,
            "exact_state_floats": oracle.state_size,
        },
    )
    assert errors[99.0] <= 0.02
    assert sketch.state_size == state_before  # constant through 10^6 adds
    assert sketch.count == oracle.count == n
    assert sketch.max == oracle.max


def test_obs_smoke(benchmark):
    """Single fast case for CI: accuracy at 2*10^4, tracing determinism
    (run via ``-k smoke`` on every Python version)."""
    values = _lognormal(20_000)
    sketch = make_sketch("p2")
    oracle = make_sketch("exact")

    def stream() -> None:
        for v in values:
            sketch.add(v)
            oracle.add(v)

    benchmark.pedantic(stream, rounds=1, iterations=1)
    assert abs(sketch.quantile(99.0) - oracle.quantile(99.0)) <= (
        0.02 * oracle.quantile(99.0)
    )
    assert sketch.state_size < 100 < oracle.state_size

    scenario = ServingScenario(qps=200.0, duration_seconds=0.3, seed=2)
    recorder = MemoryTraceRecorder(sample="all")
    simulate_serving_scenario(scenario, recorder=recorder)
    again = MemoryTraceRecorder(sample="all")
    simulate_serving_scenario(scenario, recorder=again)
    assert recorder.spans() == again.spans()
    assert recorder.spans()  # a real run leaves a real trace
