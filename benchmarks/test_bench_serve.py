"""Serving-engine benchmarks: the typed-fleet refactor must stay cheap.

The heterogeneous-fleet refactor rebuilt the engine's dispatch loop
around a routing policy and per-slice pools.  Two promises keep it
honest:

* **The default path pays nothing.**  A homogeneous ``default`` fleet
  behind the shared queue is the pre-refactor engine bit for bit (the
  regression suite pins that); this benchmark pins its *speed* — the
  event rate at 10^5 requests is recorded so the trajectory stays
  tracked in-tree.
* **Typed fleets are cheap.**  Per-type billing is accrued lazily on
  occupancy transitions rather than per event, so a heterogeneous fleet
  with size-affinity routing may cost at most 1.25x the homogeneous
  wall time on the same 10^5-request workload (measured best-of-3 both
  ways).

Results land in ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.serve.scenario import ServingScenario, simulate_serving_scenario
from repro.serve.service import LinearServiceModel

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: 10^5 requests through a 4-instance fleet.  The analytic service model
#: keeps the run compute-bound on the event loop itself (no accelerator
#: calibration in the timed region), and the service rate keeps the
#: queues busy without melting down.
N_REQUESTS = 100_000
_DURATION = 2.0
_BASE = dict(
    # A hair over the target rate: Poisson draws undershoot the mean on
    # some seeds, and the 10^5 floor is part of the acceptance criterion.
    qps=1.03 * N_REQUESTS / _DURATION,
    duration_seconds=_DURATION,
    num_tenants=2,
    max_batch=8,
    max_wait_seconds=0.0005,
    seed=3,
)
SERVICE = LinearServiceModel(base_seconds=2e-4, per_node_seconds=1e-8)

HOM = ServingScenario(instances=4, **_BASE)
HET = ServingScenario(fleet="small:3,large:1", routing="size_affinity", **_BASE)


def _timed(fn, *args, **kwargs) -> float:
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_serve.json (atomic enough for CI)."""
    data: dict = {}
    if BENCH_PATH.is_file():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_typed_fleet_event_rate(benchmark):
    """Acceptance: het fleet <= 1.25x hom wall time at 10^5 requests."""
    hom_report = simulate_serving_scenario(HOM, service=SERVICE)
    het_report = simulate_serving_scenario(HET, service=SERVICE)
    assert hom_report.offered >= N_REQUESTS
    assert het_report.offered >= N_REQUESTS
    # Both fleets actually serve the load (the comparison is only fair
    # between two busy engines, not one idle and one thrashing).
    assert hom_report.completed >= 0.99 * hom_report.offered
    assert het_report.completed >= 0.99 * het_report.offered

    benchmark.pedantic(
        simulate_serving_scenario,
        args=(HOM,),
        kwargs={"service": SERVICE},
        rounds=1, iterations=1,
    )
    t_hom = min(
        _timed(simulate_serving_scenario, HOM, service=SERVICE)
        for _ in range(3)
    )
    t_het = min(
        _timed(simulate_serving_scenario, HET, service=SERVICE)
        for _ in range(3)
    )
    ratio = t_het / t_hom
    hom_rate = hom_report.offered / t_hom
    het_rate = het_report.offered / t_het
    print(
        f"\nhom {t_hom:.2f} s ({hom_rate / 1e3:.0f}k req/s), "
        f"het {t_het:.2f} s ({het_rate / 1e3:.0f}k req/s) -> {ratio:.3f}x"
    )
    _record(
        "typed_fleet_event_rate",
        {
            "requests": hom_report.offered,
            "hom_fleet": f"default:{HOM.instances}",
            "het_fleet": HET.fleet,
            "routing": HET.routing,
            "hom_seconds": round(t_hom, 4),
            "het_seconds": round(t_het, 4),
            "hom_requests_per_second": round(hom_rate),
            "het_requests_per_second": round(het_rate),
            "overhead_ratio": round(ratio, 3),
        },
    )
    assert ratio <= 1.25


def test_serve_smoke(benchmark):
    """Single fast case for CI: a het run is consistent and deterministic
    (run via ``-k smoke`` on every Python version)."""
    scenario = ServingScenario(
        qps=2000.0,
        duration_seconds=0.5,
        fleet="small:2,large:1",
        routing="size_affinity",
        max_batch=8,
        seed=1,
    )
    report = benchmark.pedantic(
        simulate_serving_scenario,
        args=(scenario,),
        kwargs={"service": SERVICE},
        rounds=1, iterations=1,
    )
    assert report.fleet == "small:2,large:1"
    assert report.completed > 0
    assert report.cost_dollars > 0
    # Per-type accounting sums back to the fleet totals.
    assert sum(u.completed for u in report.per_type) == report.completed
    assert sum(u.batches for u in report.per_type) == report.batches
    assert sum(u.cost_dollars for u in report.per_type) == pytest.approx(
        report.cost_dollars
    )
    again = simulate_serving_scenario(scenario, service=SERVICE)
    assert again.completed == report.completed
    assert again.cost_dollars == report.cost_dollars
