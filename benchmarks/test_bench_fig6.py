"""Fig. 6 benchmark: training time and E-PE demand vs. batch size (Reddit).

Paper shape (normalized to beta = 1): training time falls steeply then
flattens (knee near the capacity boundary); E-PE demand rises steadily.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6_batch import run_fig6


def test_fig6_batch_size_tradeoff(benchmark):
    result = run_once(
        benchmark, run_fig6, dataset="reddit", betas=(1, 5, 10, 20), seed=0
    )
    print("\n" + result.table().render())
    times = result.normalized_training_time()
    demand = result.normalized_epe_demand()
    # Training time: beta=5/10 far below beta=1; past the knee the
    # reduction stops (paper: "insignificant beyond beta = 10").
    assert times[1] < 0.6
    assert times[2] < 0.6
    assert times[3] < 1.0
    assert times[3] > 0.8 * min(times)  # flattened, not still falling
    # E-PE demand strictly increases with beta.
    assert demand == sorted(demand)
    assert demand[-1] > 5.0
