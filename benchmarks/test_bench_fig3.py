"""Fig. 3 benchmark: zeros stored by 8x8 vs 128x128 crossbars per dataset.

Paper shape: the large crossbars always store more zeros — up to ~7X.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3_zeros import run_fig3


def test_fig3_zero_storage(benchmark):
    result = run_once(benchmark, run_fig3, seed=0)
    print("\n" + result.table().render())
    for name in ("ppi", "reddit", "amazon2m"):
        ratio = result.ratio(name)
        assert 1.0 < ratio < 20.0, f"{name}: ratio {ratio}"
