"""Fig. 8 benchmark: full-system speedup / energy / EDP vs. the V100 GPU.

Paper shape: ReGraphX wins on every dataset — up to 3.5X faster (3X
average), up to 11X more energy-efficient, 34X average EDP (up to 40X).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig8_fullsystem import run_fig8


def test_fig8_full_system(benchmark):
    result = run_once(benchmark, run_fig8, seed=0)
    print("\n" + result.table().render())
    print(
        f"\naverage speedup {result.mean_speedup:.2f} (paper ~3.0), "
        f"max {result.max_speedup:.2f} (paper 3.5)"
        f"\naverage energy savings {result.mean_energy_ratio:.1f} (paper up to 11)"
        f"\naverage EDP improvement {result.mean_edp_improvement:.1f} "
        f"(paper ~34, up to 40)"
    )
    for name, cmp in result.comparisons.items():
        assert cmp.speedup > 1.5, name
        assert cmp.energy_ratio > 4.0, name
        assert cmp.edp_improvement > 10.0, name
    assert 2.0 < result.mean_speedup < 4.5
    assert 6.0 < result.mean_energy_ratio < 15.0
    assert 20.0 < result.mean_edp_improvement < 55.0
