"""Reliability-layer benchmarks: fault machinery must be free when idle.

The fault/retry layer threads through the engine's hottest paths — every
dispatch checks for an active slowdown and records its in-flight batch,
every departure consults the stale-handle guard.  Two promises keep the
layer honest:

* **The default path pays nothing.**  With ``faults``/``retry`` left at
  their defaults the engine never touches the reliability state at all
  (the regression suite pins bit-identical output; the serve benchmark
  pins its speed).
* **Armed-but-idle is nearly free.**  A fault spec whose event rates
  are astronomically low (MTBF of 10^9 simulated seconds — no fault
  ever fires inside the horizon) still turns the bookkeeping on:
  in-flight tracking, slowdown checks, the crashed-handle guard.  That
  bookkeeping may cost at most 1.10x the plain engine's wall time on
  the same 10^5-request workload (measured best-of-3 both ways).

Results land in ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serve.scenario import ServingScenario, simulate_serving_scenario
from repro.serve.service import LinearServiceModel

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: 10^5 requests through a 4-instance fleet, mirroring the serve
#: benchmark's regime: the analytic service model keeps the run
#: compute-bound on the event loop, which is exactly where the
#: reliability bookkeeping lives.
N_REQUESTS = 100_000
_DURATION = 2.0
_BASE = dict(
    qps=1.03 * N_REQUESTS / _DURATION,
    duration_seconds=_DURATION,
    num_tenants=2,
    max_batch=8,
    max_wait_seconds=0.0005,
    instances=4,
    seed=3,
)
SERVICE = LinearServiceModel(base_seconds=2e-4, per_node_seconds=1e-8)

PLAIN = ServingScenario(**_BASE)
#: Every fault process armed at a rate that can never fire in-horizon.
INERT = ServingScenario(
    **_BASE,
    faults="mtbf=1e9,slow_mtbf=1e9,zones=2,zone_mtbf=1e9",
    retry="backoff",
)


def _timed(fn, *args, **kwargs) -> float:
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_serve.json (atomic enough for CI)."""
    data: dict = {}
    if BENCH_PATH.is_file():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_idle_fault_machinery_overhead(benchmark):
    """Acceptance: armed-but-idle faults <= 1.10x plain wall time."""
    plain_report = simulate_serving_scenario(PLAIN, service=SERVICE)
    inert_report = simulate_serving_scenario(INERT, service=SERVICE)
    assert plain_report.offered >= N_REQUESTS
    # No fault ever fired: the two engines did identical serving work.
    assert inert_report.crashes == 0
    assert inert_report.failed == 0
    assert inert_report.retries == 0
    assert inert_report.completed == plain_report.completed
    assert inert_report.latency.p99 == plain_report.latency.p99

    benchmark.pedantic(
        simulate_serving_scenario,
        args=(PLAIN,),
        kwargs={"service": SERVICE},
        rounds=1, iterations=1,
    )
    t_plain = min(
        _timed(simulate_serving_scenario, PLAIN, service=SERVICE)
        for _ in range(3)
    )
    t_inert = min(
        _timed(simulate_serving_scenario, INERT, service=SERVICE)
        for _ in range(3)
    )
    ratio = t_inert / t_plain
    plain_rate = plain_report.offered / t_plain
    inert_rate = inert_report.offered / t_inert
    print(
        f"\nplain {t_plain:.2f} s ({plain_rate / 1e3:.0f}k req/s), "
        f"armed-idle {t_inert:.2f} s ({inert_rate / 1e3:.0f}k req/s) "
        f"-> {ratio:.3f}x"
    )
    _record(
        "idle_fault_machinery_overhead",
        {
            "requests": plain_report.offered,
            "faults": INERT.faults,
            "retry": INERT.retry,
            "plain_seconds": round(t_plain, 4),
            "armed_idle_seconds": round(t_inert, 4),
            "plain_requests_per_second": round(plain_rate),
            "armed_idle_requests_per_second": round(inert_rate),
            "overhead_ratio": round(ratio, 3),
        },
    )
    assert ratio <= 1.10


def test_faults_smoke(benchmark):
    """Single fast case for CI: a faulted+retried+hedged run completes,
    stays deterministic, and conserves the offered load."""
    scenario = ServingScenario(
        qps=2000.0,
        duration_seconds=0.5,
        fleet="small:2,large:1",
        routing="size_affinity",
        max_batch=8,
        faults="default",
        retry="backoff",
        hedge_seconds=0.002,
        seed=1,
    )
    report = benchmark.pedantic(
        simulate_serving_scenario,
        args=(scenario,),
        kwargs={"service": SERVICE},
        rounds=1, iterations=1,
    )
    again = simulate_serving_scenario(scenario, service=SERVICE)
    assert report.crashes > 0
    assert report.completed + report.failed == report.offered
    assert report.render() == again.render()
